package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"github.com/anaheim-sim/anaheim"
	"github.com/anaheim-sim/anaheim/internal/ckks"
	"github.com/anaheim-sim/anaheim/internal/modarith"
	"github.com/anaheim-sim/anaheim/internal/ntt"
	"github.com/anaheim-sim/anaheim/internal/obs"
	"github.com/anaheim-sim/anaheim/internal/par"
	"github.com/anaheim-sim/anaheim/internal/ring"
	"github.com/anaheim-sim/anaheim/internal/rns"
)

// microResult is one operation's measured cost, the unit future PRs diff
// their perf trajectory against (see BENCH_BASELINE.json at the repo root).
type microResult struct {
	Op       string  `json:"op"`
	NsPerOp  float64 `json:"nsPerOp"`
	AllocsOp int64   `json:"allocsPerOp"`
	BytesOp  int64   `json:"bytesPerOp"`
	// MemBytesOp / MemSavedOp are the ring layer's estimated DRAM traffic per
	// op (bytes moved, and bytes a pipelined chain avoided versus its
	// barriered equivalent), sampled from the ring_bytes_moved_total /
	// ring_bytes_saved_total counters around extra runs of the op when -membw
	// is set. The model is deterministic (coefficient rows only, see
	// internal/ring/traffic.go), so these diff exactly across runs.
	MemBytesOp float64 `json:"memBytesPerOp,omitempty"`
	MemSavedOp float64 `json:"memBytesSavedPerOp,omitempty"`
	// RotationsOp is the number of key-switch gadget products one linear
	// transform sweep spends (the ckks_lintrans_rotations_total delta around
	// a single run), attached to the lintrans rows. Deterministic, so it
	// diffs exactly: the BSGS row must sit at ~bs + K/bs while the
	// per-diagonal row pays K.
	RotationsOp float64 `json:"rotationsPerOp,omitempty"`
}

type microReport struct {
	GoVersion string `json:"goVersion"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"numCpu"`
	Workers   int    `json:"parWorkers"`
	Params    string `json:"params"`
	// KernelTier / KernelTiers record the modarith SIMD dispatch state of the
	// host that produced the report: the tier the non-tier-pinned rows ran on,
	// and every tier the host could run. Comparing reports from hosts with
	// different tiers is comparing different machines — these fields make
	// that visible in the artifact.
	KernelTier  string        `json:"kernelTier"`
	KernelTiers []string      `json:"kernelTiers"`
	Results     []microResult `json:"results"`
	// Metrics is the obs registry snapshot after the run (counter totals,
	// latency quantiles), attached when -metrics is set so the same JSON
	// artifact carries both ns/op numbers and instrumentation counts.
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
	// Serving is the many-tenant load-driver report (see load.go), merged
	// into the baseline artifact so serving-layer numbers ride next to the
	// kernel ns/op ones. -compare ignores it.
	Serving *loadReport `json:"serving,omitempty"`
}

// fusionModes maps the -fusion flag to the kernel modes the fused-path
// benchmarks (lintrans, bootstrap) run in. "both" emits a -fused and an
// -unfused entry per op in one report, which is what the CI bench stage and
// the speedup gate diff.
func fusionModes(mode string) ([]bool, error) {
	switch mode {
	case "both":
		return []bool{true, false}, nil
	case "on":
		return []bool{true}, nil
	case "off":
		return []bool{false}, nil
	}
	return nil, fmt.Errorf("anaheim-bench: -fusion must be both, on, or off (got %q)", mode)
}

// nttBenchSetup builds per-limb tables and uniform coefficient rows for one
// (logN, limbs) grid cell. Called inside each benchmark body (before
// b.ResetTimer) so only one cell's tables are live at a time; the largest
// cell (logN=15, 32 limbs) holds ~40 MB of twiddles plus data.
func nttBenchSetup(logN, limbs int) ([]*ntt.Tables, [][]uint64, [][]uint64, error) {
	primes, err := modarith.GenerateNTTPrimes(55, logN, limbs)
	if err != nil {
		return nil, nil, nil, err
	}
	n := 1 << logN
	tables := make([]*ntt.Tables, limbs)
	rows := make([][]uint64, limbs)
	rows2 := make([][]uint64, limbs)
	state := uint64(0x9e3779b97f4a7c15)
	for i, p := range primes {
		tables[i], err = ntt.NewTables(modarith.MustModulus(p), logN)
		if err != nil {
			return nil, nil, nil, err
		}
		rows[i] = make([]uint64, n)
		rows2[i] = make([]uint64, n)
		for j := range rows[i] {
			// splitmix64: deterministic, dependency-free uniform filler.
			state += 0x9e3779b97f4a7c15
			z := state
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			z = (z ^ (z >> 27)) * 0x94d049bb133111eb
			z ^= z >> 31
			rows[i][j] = z % p
			rows2[i][j] = (z*6364136223846793005 + 1442695040888963407) % p
		}
	}
	return tables, rows, rows2, nil
}

// nttGrid is the transform benchmark grid. A package variable so the JSON
// shape test can shrink it to one cell; the full grid takes minutes.
var nttGrid = struct {
	logNs, limbs []int
}{
	logNs: []int{12, 13, 14, 15},
	limbs: []int{1, 4, 16, 32},
}

// addNTTBenches registers the NTT transform grid: forward, inverse, and
// element-wise product at logN in {12..15} x limbs in {1,4,16,32}, plus the
// pre-rewrite reference kernels at a single limb as the before/after pair
// the speedup gate diffs (ntt_fwd-n14-l1 vs ntt_fwd_ref-n14-l1).
func addNTTBenches(benches map[string]func(b *testing.B)) {
	for _, logN := range nttGrid.logNs {
		for _, limbs := range nttGrid.limbs {
			cell := fmt.Sprintf("n%d-l%d", logN, limbs)
			benches["ntt_fwd-"+cell] = func(b *testing.B) {
				tables, rows, _, err := nttBenchSetup(logN, limbs)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ntt.ForwardMany(tables, rows)
				}
			}
			benches["ntt_inv-"+cell] = func(b *testing.B) {
				tables, rows, _, err := nttBenchSetup(logN, limbs)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ntt.InverseMany(tables, rows)
				}
			}
			benches["mulcoeffs-"+cell] = func(b *testing.B) {
				tables, rows, rows2, err := nttBenchSetup(logN, limbs)
				if err != nil {
					b.Fatal(err)
				}
				out := make([][]uint64, limbs)
				for i := range out {
					out[i] = make([]uint64, 1<<logN)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for l := range tables {
						tables[l].MulCoeffs(out[l], rows[l], rows2[l])
					}
				}
			}
		}
		cell := fmt.Sprintf("n%d-l1", logN)
		benches["ntt_fwd_ref-"+cell] = func(b *testing.B) {
			tables, rows, _, err := nttBenchSetup(logN, 1)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tables[0].ForwardRef(rows[0])
			}
		}
		benches["ntt_inv_ref-"+cell] = func(b *testing.B) {
			tables, rows, _, err := nttBenchSetup(logN, 1)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tables[0].InverseRef(rows[0])
			}
		}
		benches["mulcoeffs_ref-"+cell] = func(b *testing.B) {
			tables, rows, rows2, err := nttBenchSetup(logN, 1)
			if err != nil {
				b.Fatal(err)
			}
			out := make([]uint64, 1<<logN)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tables[0].MulCoeffsRef(out, rows[0], rows2[0])
			}
		}
	}
}

// bconvGrid is the key-switch kernel grid (BConv, rescale, end-to-end
// keyswitch). A package variable so the JSON shape test can shrink it.
var bconvGrid = struct {
	logNs, limbs []int
}{
	logNs: []int{12, 13, 14, 15},
	limbs: []int{4, 16, 32},
}

// splitmixFill fills row with deterministic uniform values below bound.
func splitmixFill(row []uint64, bound uint64, state *uint64) {
	for j := range row {
		*state += 0x9e3779b97f4a7c15
		z := *state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		row[j] = z % bound
	}
}

func mustModuli(bits, logN, count int) ([]modarith.Modulus, error) {
	primes, err := modarith.GenerateNTTPrimes(bits, logN, count)
	if err != nil {
		return nil, err
	}
	out := make([]modarith.Modulus, count)
	for i, q := range primes {
		out[i] = modarith.MustModulus(q)
	}
	return out, nil
}

// bconvBenchSetup builds a limbs -> limbs basis conversion (the shape of a
// full-width ModUp digit: 45-bit source primes into 50-bit targets) with
// uniform input rows for one (logN, limbs) grid cell.
func bconvBenchSetup(logN, limbs int) (*rns.BasisConverter, [][]uint64, [][]uint64, error) {
	from, err := mustModuli(45, logN, limbs)
	if err != nil {
		return nil, nil, nil, err
	}
	to, err := mustModuli(50, logN, limbs)
	if err != nil {
		return nil, nil, nil, err
	}
	bc, err := rns.NewBasisConverter(from, to)
	if err != nil {
		return nil, nil, nil, err
	}
	n := 1 << logN
	state := uint64(0x6c62272e07bb0142)
	in := make([][]uint64, limbs)
	out := make([][]uint64, limbs)
	for i := 0; i < limbs; i++ {
		in[i] = make([]uint64, n)
		out[i] = make([]uint64, n)
		splitmixFill(in[i], from[i].Q, &state)
	}
	return bc, in, out, nil
}

// rescaleBenchSetup builds a limbs-deep 45-bit chain with uniform residue
// rows. The rescale kernels mutate rows in place, but rescaled rows are
// themselves valid residues, so re-running on the output is well-defined and
// measures the same work.
func rescaleBenchSetup(logN, limbs int) ([]modarith.Modulus, [][]uint64, error) {
	ms, err := mustModuli(45, logN, limbs)
	if err != nil {
		return nil, nil, err
	}
	n := 1 << logN
	state := uint64(0x51afd7ed558ccd6d)
	rows := make([][]uint64, limbs)
	for i := range rows {
		rows[i] = make([]uint64, n)
		splitmixFill(rows[i], ms[i].Q, &state)
	}
	return ms, rows, nil
}

// ksBenchSetup builds a full parameter set (limbs Q primes, α = 4 special
// primes), a relinearization key, and a uniform ciphertext for one
// end-to-end keyswitch grid cell.
func ksBenchSetup(logN, limbs int) (*ckks.Evaluator, *ckks.Ciphertext, *ckks.SwitchingKey, error) {
	logQ := make([]int, limbs)
	logQ[0] = 55
	for i := 1; i < limbs; i++ {
		logQ[i] = 45
	}
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN:     logN,
		LogQ:     logQ,
		LogP:     []int{50, 50, 50, 50},
		LogScale: 45,
		HDense:   64,
		HSparse:  16,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	kgen := ckks.NewKeyGenerator(params, 3)
	sk := kgen.GenSecretKey()
	keys := ckks.NewEvaluationKeySet()
	keys.Rlk = kgen.GenRelinearizationKey(sk)
	ev := ckks.NewEvaluator(params, keys)
	rq := params.RingQ()
	s := ring.NewSampler(4)
	lvl := params.MaxLevel()
	ct := &ckks.Ciphertext{
		C0:    s.UniformPoly(rq, lvl, true),
		C1:    s.UniformPoly(rq, lvl, true),
		Scale: params.DefaultScale(),
	}
	return ev, ct, keys.Rlk, nil
}

// addBConvBenches registers the key-switch kernel grid: the wide-accumulation
// BConv against its retired scalar oracle, the vectorized rescale against
// its oracle, and the end-to-end SwitchKeys pipeline, at
// logN in {12..15} x limbs in {4,16,32}. The bconv/bconv_ref pair at
// n14-l16 is the headline before/after number of the wide-accumulation
// rewrite.
func addBConvBenches(benches map[string]func(b *testing.B)) {
	for _, logN := range bconvGrid.logNs {
		for _, limbs := range bconvGrid.limbs {
			cell := fmt.Sprintf("n%d-l%d", logN, limbs)
			benches["bconv-"+cell] = func(b *testing.B) {
				bc, in, out, err := bconvBenchSetup(logN, limbs)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					bc.Convert(out, in)
				}
			}
			benches["bconv_ref-"+cell] = func(b *testing.B) {
				bc, in, out, err := bconvBenchSetup(logN, limbs)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					bc.ConvertRef(out, in)
				}
			}
			benches["rescale-"+cell] = func(b *testing.B) {
				ms, rows, err := rescaleBenchSetup(logN, limbs)
				if err != nil {
					b.Fatal(err)
				}
				rs := rns.NewRescaler(ms)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					rs.DivRoundByLastModulus(rows)
				}
			}
			benches["rescale_ref-"+cell] = func(b *testing.B) {
				ms, rows, err := rescaleBenchSetup(logN, limbs)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					rns.DivRoundByLastModulusRef(ms, rows)
				}
			}
			benches["keyswitch-"+cell] = func(b *testing.B) {
				ev, ct, rlk, err := ksBenchSetup(logN, limbs)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ev.SwitchKeys(ct, rlk)
				}
			}
		}
	}
}

// ksLevelGrid is the level-aware keyswitch grid: a 16-limb chain per logN,
// measured at a low, mid, and top level with the level-aware plans on
// (-levelaware rows) and off (-leveloblivious rows). The top-level pair
// must tie — the top plan is pinned to the legacy shape — while the low
// rows carry the payoff. A package variable so the JSON shape test can
// shrink it.
var ksLevelGrid = struct {
	logNs  []int
	limbs  int
	levels []struct {
		name string
		lvl  int
	}
}{
	logNs: []int{12, 13, 14, 15},
	limbs: 16,
	levels: []struct {
		name string
		lvl  int
	}{{"low", 0}, {"mid", 7}, {"top", 15}},
}

// addLevelAwareBenches registers the keyswitch-levelaware grid rows.
func addLevelAwareBenches(benches map[string]func(b *testing.B)) {
	for _, logN := range ksLevelGrid.logNs {
		for _, lv := range ksLevelGrid.levels {
			for _, aware := range []bool{true, false} {
				mode := "levelaware"
				if !aware {
					mode = "leveloblivious"
				}
				name := fmt.Sprintf("keyswitch-%s-n%d-%s", mode, logN, lv.name)
				logN, lvl, aware := logN, lv.lvl, aware
				benches[name] = func(b *testing.B) {
					ev, ct, rlk, err := ksBenchSetup(logN, ksLevelGrid.limbs)
					if err != nil {
						b.Fatal(err)
					}
					ctL := ev.DropLevel(ct, lvl)
					prev := ckks.LevelAwareEnabled()
					ckks.SetLevelAware(aware)
					defer ckks.SetLevelAware(prev)
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						ev.SwitchKeys(ctL, rlk)
					}
				}
			}
		}
	}
}

// ringMoved / ringSaved are handles to the ring layer's DRAM-traffic model
// counters (internal/ring/traffic.go). The registry hands back the same
// counter for the same name, so these observe exactly what the kernels
// charge.
var ringMoved = []*obs.Counter{
	obs.Default.Counter(`ring_bytes_moved_total{class="elemwise",mode="barriered"}`),
	obs.Default.Counter(`ring_bytes_moved_total{class="mac",mode="barriered"}`),
	obs.Default.Counter(`ring_bytes_moved_total{class="reduce",mode="barriered"}`),
	obs.Default.Counter(`ring_bytes_moved_total{class="transform",mode="barriered"}`),
	obs.Default.Counter(`ring_bytes_moved_total{class="aut",mode="barriered"}`),
	obs.Default.Counter(`ring_bytes_moved_total{class="chain",mode="pipelined"}`),
}

var ringSaved = obs.Default.Counter("ring_bytes_saved_total")

// ringTraffic reads the cumulative bytes-moved and bytes-saved totals.
func ringTraffic() (moved, saved float64) {
	for _, c := range ringMoved {
		moved += c.Value()
	}
	return moved, ringSaved.Value()
}

// memProbe runs one op a few times around the traffic counters and returns
// its estimated bytes moved (and pipelined bytes saved) per run. Registered
// per bench row; only sampled when -membw is set.
type memProbe func() (moved, saved float64, err error)

// probeTraffic is the shared probe body: warm once (pools, caches), then
// average the counter delta over k runs. The counters are deterministic, so
// k=2 only guards against first-run pool growth, not jitter.
func probeTraffic(op func() error) (moved, saved float64, err error) {
	if err := op(); err != nil {
		return 0, 0, err
	}
	const k = 2
	m0, s0 := ringTraffic()
	for i := 0; i < k; i++ {
		if err := op(); err != nil {
			return 0, 0, err
		}
	}
	m1, s1 := ringTraffic()
	return (m1 - m0) / k, (s1 - s0) / k, nil
}

// pipeGrid is the pipelined-vs-barriered pair cell: the headline n14-l16
// shape of the limb-pipelining rewrite (2 MB per operand — far beyond LLC,
// which is where chain fusion pays). A package variable so the JSON shape
// test can shrink it.
var pipeGrid = struct {
	logN, limbs int
}{logN: 14, limbs: 16}

// pipeBenchSetup is ksBenchSetup plus a rotation key, for the rotate pair
// rows.
func pipeBenchSetup(logN, limbs int) (*ckks.Evaluator, *ckks.Ciphertext, *ckks.SwitchingKey, error) {
	logQ := make([]int, limbs)
	logQ[0] = 55
	for i := 1; i < limbs; i++ {
		logQ[i] = 45
	}
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN:     logN,
		LogQ:     logQ,
		LogP:     []int{50, 50, 50, 50},
		LogScale: 45,
		HDense:   64,
		HSparse:  16,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	kgen := ckks.NewKeyGenerator(params, 3)
	sk := kgen.GenSecretKey()
	keys := ckks.NewEvaluationKeySet()
	keys.Rlk = kgen.GenRelinearizationKey(sk)
	kgen.GenRotationKeys(sk, keys, []int{1})
	ev := ckks.NewEvaluator(params, keys)
	rq := params.RingQ()
	s := ring.NewSampler(7)
	lvl := params.MaxLevel()
	ct := &ckks.Ciphertext{
		C0:    s.UniformPoly(rq, lvl, true),
		C1:    s.UniformPoly(rq, lvl, true),
		Scale: params.DefaultScale(),
	}
	return ev, ct, keys.Rlk, nil
}

// withCkksPipelined pins the evaluator-layer fusion+pipelining toggles for
// one body and restores them. Fusion stays on in both modes so the pair
// isolates chain pipelining, not kernel fusion.
func withCkksPipelined(piped bool, body func() error) error {
	prevF, prevP := ckks.FusionEnabled(), ckks.PipelinedEnabled()
	ckks.SetFusion(true)
	ckks.SetPipelined(piped)
	defer func() {
		ckks.SetFusion(prevF)
		ckks.SetPipelined(prevP)
	}()
	return body()
}

// pairTiming re-times one pipelined/barriered row pair with the two modes
// interleaved over a shared setup. Shared-runner noise comes in episodes
// lasting longer than a whole testing.Benchmark run, so timing the two rows
// minutes apart (or even retrying each a few times) can flip the sign of a
// ~10-20% delta; alternating short batches of the two modes puts every
// episode on both sides of the ratio. The interleaved numbers replace the
// pair rows' NsPerOp in the report (allocs/bytes columns keep the
// testing.Benchmark measurement, which is deterministic).
type pairTiming struct {
	pipedOp, barrOp string
	measure         func() (pipedNs, barrNs float64, err error)
}

// measurePair interleaves rounds x batch ops per mode over one prepared op
// closure and returns the mean ns/op per mode.
func measurePair(rounds, batch int, op func() error) (pipedNs, barrNs float64, err error) {
	var tPiped, tBarr time.Duration
	for _, piped := range []bool{true, false} { // warm pools and caches in both modes
		if err := withCkksPipelined(piped, op); err != nil {
			return 0, 0, err
		}
	}
	for r := 0; r < rounds; r++ {
		for _, piped := range []bool{true, false} {
			err := withCkksPipelined(piped, func() error {
				start := time.Now()
				for i := 0; i < batch; i++ {
					if err := op(); err != nil {
						return err
					}
				}
				if piped {
					tPiped += time.Since(start)
				} else {
					tBarr += time.Since(start)
				}
				return nil
			})
			if err != nil {
				return 0, 0, err
			}
		}
	}
	n := float64(rounds * batch)
	return float64(tPiped.Nanoseconds()) / n, float64(tBarr.Nanoseconds()) / n, nil
}

// measureOpPair interleaves two different ops (instead of two toggle modes)
// with the same batching discipline as measurePair, for pairs like
// BSGS-vs-per-diagonal where the comparison is between algorithms, not
// kernel modes.
func measureOpPair(rounds, batch int, opA, opB func() error) (aNs, bNs float64, err error) {
	var tA, tB time.Duration
	for _, op := range []func() error{opA, opB} { // warm pools and caches
		if err := op(); err != nil {
			return 0, 0, err
		}
	}
	for r := 0; r < rounds; r++ {
		for i, op := range []func() error{opA, opB} {
			start := time.Now()
			for k := 0; k < batch; k++ {
				if err := op(); err != nil {
					return 0, 0, err
				}
			}
			if i == 0 {
				tA += time.Since(start)
			} else {
				tB += time.Since(start)
			}
		}
	}
	n := float64(rounds * batch)
	return float64(tA.Nanoseconds()) / n, float64(tB.Nanoseconds()) / n, nil
}

// addPipelineBenches registers the pipelined-vs-barriered pair rows for the
// two hottest key-switching chains at the pipeGrid cell, plus their traffic
// probes and interleaved pair timers. The pipelined row must beat the
// barriered one on both ns/op and bytes moved — that pair is what -compare
// gates after the limb-pipelining rewrite (DESIGN.md §3.13).
func addPipelineBenches(benches map[string]func(b *testing.B), probes map[string]memProbe, pairs *[]pairTiming) {
	cell := fmt.Sprintf("n%d-l%d", pipeGrid.logN, pipeGrid.limbs)
	*pairs = append(*pairs,
		pairTiming{
			pipedOp: "keyswitch-pipelined-" + cell,
			barrOp:  "keyswitch-barriered-" + cell,
			measure: func() (float64, float64, error) {
				ev, ct, rlk, err := ksBenchSetup(pipeGrid.logN, pipeGrid.limbs)
				if err != nil {
					return 0, 0, err
				}
				return measurePair(8, 3, func() error {
					ev.SwitchKeys(ct, rlk)
					return nil
				})
			},
		},
		pairTiming{
			pipedOp: "rotate-pipelined-" + cell,
			barrOp:  "rotate-barriered-" + cell,
			measure: func() (float64, float64, error) {
				ev, ct, _, err := pipeBenchSetup(pipeGrid.logN, pipeGrid.limbs)
				if err != nil {
					return 0, 0, err
				}
				return measurePair(8, 3, func() error {
					_, err := ev.Rotate(ct, 1)
					return err
				})
			},
		},
	)
	for _, piped := range []bool{true, false} {
		mode := "barriered"
		if piped {
			mode = "pipelined"
		}
		piped := piped
		benches["keyswitch-"+mode+"-"+cell] = func(b *testing.B) {
			ev, ct, rlk, err := ksBenchSetup(pipeGrid.logN, pipeGrid.limbs)
			if err != nil {
				b.Fatal(err)
			}
			err = withCkksPipelined(piped, func() error {
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ev.SwitchKeys(ct, rlk)
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		}
		probes["keyswitch-"+mode+"-"+cell] = func() (float64, float64, error) {
			ev, ct, rlk, err := ksBenchSetup(pipeGrid.logN, pipeGrid.limbs)
			if err != nil {
				return 0, 0, err
			}
			var moved, saved float64
			err = withCkksPipelined(piped, func() error {
				moved, saved, err = probeTraffic(func() error {
					ev.SwitchKeys(ct, rlk)
					return nil
				})
				return err
			})
			return moved, saved, err
		}
		benches["rotate-"+mode+"-"+cell] = func(b *testing.B) {
			ev, ct, _, err := pipeBenchSetup(pipeGrid.logN, pipeGrid.limbs)
			if err != nil {
				b.Fatal(err)
			}
			err = withCkksPipelined(piped, func() error {
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := ev.Rotate(ct, 1); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		}
		probes["rotate-"+mode+"-"+cell] = func() (float64, float64, error) {
			ev, ct, _, err := pipeBenchSetup(pipeGrid.logN, pipeGrid.limbs)
			if err != nil {
				return 0, 0, err
			}
			var moved, saved float64
			err = withCkksPipelined(piped, func() error {
				moved, saved, err = probeTraffic(func() error {
					_, err := ev.Rotate(ct, 1)
					return err
				})
				return err
			})
			return moved, saved, err
		}
	}
}

// runMicro benchmarks the FHE hot ops at the test-scale parameter set and
// writes machine-readable JSON. testing.Benchmark picks the iteration count,
// so wall-clock stays in seconds even on slow hosts. withMetrics attaches
// the observability registry snapshot to the report. fusionMode selects the
// kernel modes for the fused-path benchmarks (see fusionModes). withMemBW
// additionally samples the ring traffic counters around the rows that have a
// registered probe and attaches bytes-moved-per-op columns.
func runMicro(out io.Writer, withMetrics bool, fusionMode string, withMemBW bool) error {
	modes, err := fusionModes(fusionMode)
	if err != nil {
		return err
	}
	ctx, err := anaheim.NewContext(anaheim.TestParameters(), 1)
	if err != nil {
		return err
	}
	ctx.GenRotationKeys(1)
	u := make([]complex128, ctx.Params.Slots())
	for i := range u {
		u[i] = complex(float64(i%7)/8, -float64(i%3)/4)
	}
	ctU, err := ctx.Encrypt(u)
	if err != nil {
		return err
	}
	ctV, err := ctx.Encrypt(u)
	if err != nil {
		return err
	}
	pt, err := ctx.Encode(u, ctU.Level())
	if err != nil {
		return err
	}

	benches := map[string]func(b *testing.B){
		"encrypt": func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ctx.Encrypt(u); err != nil {
					b.Fatal(err)
				}
			}
		},
		"decrypt": func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ctx.Decrypt(ctU)
			}
		},
		"add": func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ctx.Add(ctU, ctV)
			}
		},
		"mul-relin-rescale": func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ctx.Mul(ctU, ctV)
			}
		},
		"mul-plain": func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ctx.MulPlain(ctU, pt)
			}
		},
		"rotate": func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ctx.Rotate(ctU, 1); err != nil {
					b.Fatal(err)
				}
			}
		},
	}

	probes := map[string]memProbe{
		// Facade-level headline ops at the test preset: cheap to probe, and
		// the membw column makes the default (pipelined) traffic visible next
		// to their ns/op.
		"mul-relin-rescale": func() (float64, float64, error) {
			return probeTraffic(func() error {
				ctx.Mul(ctU, ctV)
				return nil
			})
		},
		"rotate": func() (float64, float64, error) {
			return probeTraffic(func() error {
				_, err := ctx.Rotate(ctU, 1)
				return err
			})
		},
	}

	var pairs []pairTiming
	addNTTBenches(benches)
	addBConvBenches(benches)
	addLevelAwareBenches(benches)
	addKernelTierBenches(benches)
	addPipelineBenches(benches, probes, &pairs)

	// Fused-path functional benchmarks: the hoisted linear transform and a
	// full bootstrap, each in the requested fusion modes. These are the two
	// workloads the §V rewrites target, so their fused/unfused ratio is the
	// headline number of the report.
	slots := ctx.Params.Slots()
	diags := make(map[int][]complex128)
	for _, d := range []int{0, 1, 2, 3, 5, 8, 13, 21} {
		row := make([]complex128, slots)
		for i := range row {
			row[i] = complex(float64((i+d)%5)/5, float64(d%3)/4)
		}
		diags[d%slots] = row
	}
	lt := anaheim.NewLinearTransform(slots, diags)
	ctx.GenRotationKeys(lt.Rotations()...)

	// Dense 32-diagonal transform — the grouped bootstrap-DFT shape where the
	// BSGS factorization wins. Two instances of the same matrix: one left on
	// the cost model's automatic choice (BSGS, keys = baby ∪ giant set), one
	// forced onto the per-diagonal hoisted sweep with per-offset keys.
	denseDiags := make(map[int][]complex128)
	for d := 0; d < 32; d++ {
		row := make([]complex128, slots)
		for i := range row {
			row[i] = complex(float64((i+d)%7)/7, float64((i*d)%5)/6)
		}
		denseDiags[d] = row
	}
	ltDense := anaheim.NewLinearTransform(slots, denseDiags)
	ctx.GenLinearTransformKeys(ltDense)
	ltDensePD := anaheim.NewLinearTransform(slots, denseDiags)
	ltDensePD.SetBabyStep(-1)
	ctx.GenRotationKeys(ltDensePD.Rotations()...)

	bootCtx, err := anaheim.NewContext(anaheim.BootParameters(), 2)
	if err != nil {
		return err
	}
	if err := bootCtx.SetupBootstrapping(anaheim.DefaultBootstrapConfig()); err != nil {
		return err
	}
	vb := make([]complex128, bootCtx.Params.Slots())
	for i := range vb {
		vb[i] = complex(float64(i%5)/8, 0)
	}
	ctBoot, err := bootCtx.Encrypt(vb)
	if err != nil {
		return err
	}
	ctBoot = bootCtx.DropToLevel(ctBoot, 0)

	withFusion := func(fused bool, body func(b *testing.B)) func(b *testing.B) {
		return func(b *testing.B) {
			prev := anaheim.FusionEnabled()
			anaheim.SetFusion(fused)
			defer anaheim.SetFusion(prev)
			body(b)
		}
	}
	for _, fused := range modes {
		suffix := "fused"
		if !fused {
			suffix = "unfused"
		}
		benches["lintrans-"+suffix] = withFusion(fused, func(b *testing.B) {
			// Warm the diagonal-encoding cache so both modes measure kernels.
			if _, err := ctx.EvaluateLinearTransform(ctU, lt); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ctx.EvaluateLinearTransform(ctU, lt); err != nil {
					b.Fatal(err)
				}
			}
		})
		benches["bootstrap-"+suffix] = withFusion(fused, func(b *testing.B) {
			if _, err := bootCtx.Bootstrap(ctBoot); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := bootCtx.Bootstrap(ctBoot); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	// BSGS-vs-per-diagonal pair on the dense matrix (both rows run the
	// default kernel modes; the strategies differ, not the toggles). The
	// rotation-count column is sampled separately per row below.
	benches["lintrans-bsgs"] = func(b *testing.B) {
		if _, err := ctx.EvaluateLinearTransform(ctU, ltDense); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ctx.EvaluateLinearTransform(ctU, ltDense); err != nil {
				b.Fatal(err)
			}
		}
	}
	benches["lintrans-perdiag"] = func(b *testing.B) {
		if _, err := ctx.EvaluateLinearTransform(ctU, ltDensePD); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ctx.EvaluateLinearTransform(ctU, ltDensePD); err != nil {
				b.Fatal(err)
			}
		}
	}
	pairs = append(pairs, pairTiming{
		pipedOp: "lintrans-bsgs",
		barrOp:  "lintrans-perdiag",
		measure: func() (float64, float64, error) {
			return measureOpPair(8, 3,
				func() error { _, err := ctx.EvaluateLinearTransform(ctU, ltDense); return err },
				func() error { _, err := ctx.EvaluateLinearTransform(ctU, ltDensePD); return err })
		},
	})

	// Key-switch counts per sweep, from the lintrans rotation counter — a
	// deterministic column, so -compare style diffs see strategy regressions
	// even when ns/op jitter hides them.
	rotProbes := map[string]func() error{
		"lintrans-bsgs":    func() error { _, err := ctx.EvaluateLinearTransform(ctU, ltDense); return err },
		"lintrans-perdiag": func() error { _, err := ctx.EvaluateLinearTransform(ctU, ltDensePD); return err },
	}
	for _, fused := range modes {
		suffix := "fused"
		if !fused {
			suffix = "unfused"
		}
		rotProbes["lintrans-"+suffix] = func() error { _, err := ctx.EvaluateLinearTransform(ctU, lt); return err }
	}
	rotTotal := func() float64 {
		return obs.Default.Snapshot().Counters["ckks_lintrans_rotations_total"]
	}

	// Pipelined-vs-barriered bootstrap pair (fusion pinned on in both modes,
	// same discipline as addPipelineBenches): the DFT diag sweeps plus the
	// per-rotation ModDowns are the deepest chain stack in the repo, so this
	// is where the bytes-saved column is largest.
	for _, piped := range []bool{true, false} {
		mode := "barriered"
		if piped {
			mode = "pipelined"
		}
		piped := piped
		benches["bootstrap-"+mode] = func(b *testing.B) {
			err := withCkksPipelined(piped, func() error {
				if _, err := bootCtx.Bootstrap(ctBoot); err != nil {
					return err
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := bootCtx.Bootstrap(ctBoot); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		}
		probes["bootstrap-"+mode] = func() (float64, float64, error) {
			var moved, saved float64
			err := withCkksPipelined(piped, func() error {
				var err error
				moved, saved, err = probeTraffic(func() error {
					_, err := bootCtx.Bootstrap(ctBoot)
					return err
				})
				return err
			})
			return moved, saved, err
		}
	}
	pairs = append(pairs, pairTiming{
		pipedOp: "bootstrap-pipelined",
		barrOp:  "bootstrap-barriered",
		measure: func() (float64, float64, error) {
			return measurePair(3, 1, func() error {
				_, err := bootCtx.Bootstrap(ctBoot)
				return err
			})
		},
	})

	rep := microReport{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		Workers:    par.Workers(),
		Params:     fmt.Sprintf("logN=%d levels=%d (test preset)", ctx.Params.LogN(), ctx.Params.MaxLevel()+1),
		KernelTier: modarith.ActiveTier().String(),
	}
	for _, tier := range modarith.AvailableTiers() {
		rep.KernelTiers = append(rep.KernelTiers, tier.String())
	}
	names := make([]string, 0, len(benches))
	for name := range benches {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		r := testing.Benchmark(benches[name])
		res := microResult{
			Op:       name,
			NsPerOp:  float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsOp: r.AllocsPerOp(),
			BytesOp:  r.AllocedBytesPerOp(),
		}
		membw := ""
		if probe, ok := probes[name]; withMemBW && ok {
			moved, saved, err := probe()
			if err != nil {
				return fmt.Errorf("anaheim-bench: -membw probe %s: %w", name, err)
			}
			res.MemBytesOp = moved
			res.MemSavedOp = saved
			membw = fmt.Sprintf(" %9.1f MB moved/op", moved/(1<<20))
		}
		if probe, ok := rotProbes[name]; ok {
			before := rotTotal()
			if err := probe(); err != nil {
				return fmt.Errorf("anaheim-bench: rotation probe %s: %w", name, err)
			}
			res.RotationsOp = rotTotal() - before
		}
		rep.Results = append(rep.Results, res)
		fmt.Fprintf(os.Stderr, "%-28s %12.0f ns/op %8d allocs/op%s\n",
			name, res.NsPerOp, res.AllocsOp, membw)
	}

	// Replace the pair rows' ns/op with the interleaved measurement (see
	// pairTiming) so the pipelined-vs-barriered ratio survives noisy hosts.
	byOp := make(map[string]*microResult, len(rep.Results))
	for i := range rep.Results {
		byOp[rep.Results[i].Op] = &rep.Results[i]
	}
	for _, pt := range pairs {
		pipedNs, barrNs, err := pt.measure()
		if err != nil {
			return fmt.Errorf("anaheim-bench: pair timing %s: %w", pt.pipedOp, err)
		}
		byOp[pt.pipedOp].NsPerOp = pipedNs
		byOp[pt.barrOp].NsPerOp = barrNs
		fmt.Fprintf(os.Stderr, "%-28s %12.0f ns/op vs %12.0f ns/op %s (interleaved, %0.2fx)\n",
			pt.pipedOp, pipedNs, barrNs, pt.barrOp, barrNs/pipedNs)
	}

	if withMetrics {
		snap := obs.Default.Snapshot()
		rep.Metrics = &snap
	}

	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
