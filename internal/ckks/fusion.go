package ckks

import (
	"math/big"
	"sync/atomic"
	"time"

	"github.com/anaheim-sim/anaheim/internal/ring"
)

// Kernel-fusion toggle for the CKKS execution layer. When enabled (the
// default), multiply-accumulate chains run through the lazy single-pass ring
// kernels (ring.MulCoeffsAddLazy and friends, paper §V's fused element-wise
// blocks) instead of discrete multiply-then-add passes with temporary
// polynomials. Results are congruent mod q either way — fusion changes
// memory traffic and reduction strategy, not arithmetic — so tests can
// demand exact agreement between the two modes.

var fusionDisabled atomic.Bool

// SetFusion enables or disables the fused CKKS kernels process-wide.
func SetFusion(on bool) { fusionDisabled.Store(!on) }

// FusionEnabled reports whether the fused CKKS kernels are active.
func FusionEnabled() bool { return !fusionDisabled.Load() }

// AddMany returns ct0 + ct1 + ... in a single pass per limb (the collapsed
// form of an HADD ladder). With fusion disabled it falls back to the chained
// two-operand Add, so both modes stay runnable for comparison.
func (ev *Evaluator) AddMany(cts []*Ciphertext) *Ciphertext {
	if len(cts) == 0 {
		panic("ckks: AddMany needs at least one ciphertext")
	}
	if len(cts) == 1 {
		return cts[0].CopyNew()
	}
	if !FusionEnabled() {
		out := ev.Add(cts[0], cts[1])
		for _, ct := range cts[2:] {
			out = ev.Add(out, ct)
		}
		return out
	}
	defer obsAddMany.done(time.Now())
	rq := ev.params.RingQ()
	lvl := cts[0].Level()
	for _, ct := range cts[1:] {
		ev.checkScales(cts[0].Scale, ct.Scale)
		lvl = min(lvl, ct.Level())
	}
	c0s := make([]*ring.Poly, len(cts))
	c1s := make([]*ring.Poly, len(cts))
	for i, ct := range cts {
		c0s[i] = ct.C0.Truncated(lvl)
		c1s[i] = ct.C1.Truncated(lvl)
	}
	out := &Ciphertext{C0: rq.NewPoly(lvl), C1: rq.NewPoly(lvl), Scale: cts[0].Scale}
	rq.AddMany(out.C0, c0s, lvl)
	rq.AddMany(out.C1, c1s, lvl)
	return out
}

// MulConstAccum returns Σ_i consts[i]·cts[i], with every constant encoded at
// scale constScale (as in MultConst; callers follow with Rescale). This is
// the scheme-level PAccum/CAccum: the fused path keeps one lazy accumulator
// per component and performs len(cts) constant-multiply-accumulate passes,
// instead of len(cts) MultConst temporaries plus len(cts)-1 Add passes.
func (ev *Evaluator) MulConstAccum(cts []*Ciphertext, consts []float64, constScale float64) *Ciphertext {
	if len(cts) == 0 || len(cts) != len(consts) {
		panic("ckks: MulConstAccum needs matching non-empty ciphertexts and constants")
	}
	if !FusionEnabled() {
		out := ev.MultConst(cts[0], consts[0], constScale)
		for i := 1; i < len(cts); i++ {
			out = ev.Add(out, ev.MultConst(cts[i], consts[i], constScale))
		}
		return out
	}
	defer obsMulConstAccum.done(time.Now())
	rq := ev.params.RingQ()
	lvl := cts[0].Level()
	for _, ct := range cts[1:] {
		ev.checkScales(cts[0].Scale, ct.Scale)
		lvl = min(lvl, ct.Level())
	}
	acc0, acc1 := rq.NewPoly(lvl), rq.NewPoly(lvl)
	scalars := make([]uint64, lvl+1)
	for i, ct := range cts {
		k := bigScaled(big.NewFloat(consts[i]), constScale)
		for l := 0; l <= lvl; l++ {
			scalars[l] = new(big.Int).Mod(k, new(big.Int).SetUint64(rq.Moduli[l].Q)).Uint64()
		}
		rq.MulByLimbScalarsAddLazy(acc0, ct.C0.Truncated(lvl), scalars, lvl)
		rq.MulByLimbScalarsAddLazy(acc1, ct.C1.Truncated(lvl), scalars, lvl)
	}
	rq.ReduceLazy(acc0, lvl)
	rq.ReduceLazy(acc1, lvl)
	acc0.IsNTT, acc1.IsNTT = true, true
	return &Ciphertext{C0: acc0, C1: acc1, Scale: cts[0].Scale * constScale}
}
