package modarith

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

var testModuli = []uint64{
	(1 << 16) + 1,             // Fermat prime F4
	0x1fffffffffe00001,        // 61-bit NTT-friendly prime (Lattigo Qi60)
	0xffffffffffc0001,         // 60-bit
	0x1fffffffffb40001,        // another 61-bit
	(1 << 28) - (1 << 16) + 1, // 28-bit-class prime 268369921 = 2^28-2^16+1
}

func TestNewModulusRejectsBad(t *testing.T) {
	for _, q := range []uint64{0, 1, 2, 4, 1 << 62} {
		if _, err := NewModulus(q); err == nil {
			t.Errorf("NewModulus(%d) should fail", q)
		}
	}
}

func TestAddSubNeg(t *testing.T) {
	for _, q := range testModuli {
		if !IsPrime(q) {
			t.Fatalf("test modulus %d is not prime", q)
		}
		m := MustModulus(q)
		r := rand.New(rand.NewSource(1))
		for i := 0; i < 1000; i++ {
			a := r.Uint64() % q
			b := r.Uint64() % q
			if got, want := m.Add(a, b), (a+b)%q; got != want {
				// a+b may overflow uint64 only if q >= 2^63; excluded by construction
				t.Fatalf("Add(%d,%d) mod %d = %d, want %d", a, b, q, got, want)
			}
			wantSub := new(big.Int).Mod(new(big.Int).Sub(big.NewInt(0).SetUint64(a), big.NewInt(0).SetUint64(b)), big.NewInt(0).SetUint64(q)).Uint64()
			if got := m.Sub(a, b); got != wantSub {
				t.Fatalf("Sub(%d,%d) mod %d = %d, want %d", a, b, q, got, wantSub)
			}
			if got := m.Add(a, m.Neg(a)); got != 0 {
				t.Fatalf("a + (-a) = %d, want 0", got)
			}
		}
	}
}

func TestMulAgainstBig(t *testing.T) {
	for _, q := range testModuli {
		m := MustModulus(q)
		bq := new(big.Int).SetUint64(q)
		r := rand.New(rand.NewSource(2))
		for i := 0; i < 1000; i++ {
			a := r.Uint64() % q
			b := r.Uint64() % q
			want := new(big.Int).Mul(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b))
			want.Mod(want, bq)
			if got := m.Mul(a, b); got != want.Uint64() {
				t.Fatalf("Mul(%d,%d) mod %d = %d, want %s", a, b, q, got, want)
			}
		}
	}
}

func TestMulShoup(t *testing.T) {
	for _, q := range testModuli {
		m := MustModulus(q)
		r := rand.New(rand.NewSource(3))
		for i := 0; i < 1000; i++ {
			a := r.Uint64() % q
			w := r.Uint64() % q
			ws := m.ShoupPrecomp(w)
			if got, want := m.MulShoup(a, w, ws), m.Mul(a, w); got != want {
				t.Fatalf("MulShoup(%d,%d) mod %d = %d, want %d", a, w, q, got, want)
			}
		}
	}
}

func TestMontgomery(t *testing.T) {
	for _, q := range testModuli {
		m := MustModulus(q)
		r := rand.New(rand.NewSource(4))
		for i := 0; i < 1000; i++ {
			a := r.Uint64() % q
			b := r.Uint64() % q
			bm := m.MForm(b)
			if got, want := m.MRed(a, bm), m.Mul(a, b); got != want {
				t.Fatalf("MRed(%d, MForm(%d)) mod %d = %d, want %d", a, b, q, got, want)
			}
			if got := m.IForm(m.MForm(a)); got != a {
				t.Fatalf("IForm(MForm(%d)) = %d mod %d", a, got, q)
			}
		}
	}
}

func TestPowInv(t *testing.T) {
	m := MustModulus(testModuli[1])
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		a := r.Uint64()%(m.Q-1) + 1
		inv := m.MustInv(a)
		if m.Mul(a, inv) != 1 {
			t.Fatalf("a * a^{-1} != 1 for a=%d", a)
		}
	}
	if m.Pow(3, 0) != 1 {
		t.Fatal("a^0 != 1")
	}
	if m.Pow(3, 1) != 3 {
		t.Fatal("a^1 != a")
	}
}

func TestPowIsHomomorphic(t *testing.T) {
	m := MustModulus(0xffffffffffc0001)
	f := func(a uint64, e1, e2 uint16) bool {
		a = a%(m.Q-1) + 1
		lhs := m.Mul(m.Pow(a, uint64(e1)), m.Pow(a, uint64(e2)))
		rhs := m.Pow(a, uint64(e1)+uint64(e2))
		return lhs == rhs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMulAssociativeCommutative(t *testing.T) {
	m := MustModulus(0x1fffffffffe00001)
	f := func(a, b, c uint64) bool {
		a, b, c = a%m.Q, b%m.Q, c%m.Q
		if m.Mul(a, b) != m.Mul(b, a) {
			return false
		}
		return m.Mul(m.Mul(a, b), c) == m.Mul(a, m.Mul(b, c))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCenteredRoundTrip(t *testing.T) {
	m := MustModulus(testModuli[0])
	f := func(a uint64) bool {
		a %= m.Q
		c := m.Centered(a)
		if c > int64(m.QHalf) || c < -int64(m.QHalf) {
			return false
		}
		return m.FromCentered(c) == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPrimitiveNthRoot(t *testing.T) {
	for _, logN := range []int{4, 10} {
		n := uint64(1) << uint(logN+1) // 2N-th roots
		primes, err := GenerateNTTPrimes(55, logN, 3)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range primes {
			m := MustModulus(q)
			psi, err := m.PrimitiveNthRoot(n)
			if err != nil {
				t.Fatal(err)
			}
			if m.Pow(psi, n) != 1 {
				t.Fatalf("psi^n != 1 for q=%d", q)
			}
			if m.Pow(psi, n/2) != q-1 {
				t.Fatalf("psi^(n/2) != -1 for q=%d (order too small)", q)
			}
		}
	}
}

func TestIsPrimeSmall(t *testing.T) {
	primes := map[uint64]bool{2: true, 3: true, 5: true, 7: true, 97: true, 65537: true}
	composites := []uint64{0, 1, 4, 6, 9, 15, 91, 65536, 3215031751}
	for p := range primes {
		if !IsPrime(p) {
			t.Errorf("IsPrime(%d) = false", p)
		}
	}
	for _, c := range composites {
		if IsPrime(c) {
			t.Errorf("IsPrime(%d) = true", c)
		}
	}
}

func TestGenerateNTTPrimes(t *testing.T) {
	for _, tc := range []struct{ bits, logN, count int }{
		{28, 12, 8},
		{40, 13, 10},
		{55, 16, 20},
		{60, 16, 4},
	} {
		primes, err := GenerateNTTPrimes(tc.bits, tc.logN, tc.count)
		if err != nil {
			t.Fatalf("GenerateNTTPrimes(%v): %v", tc, err)
		}
		seen := map[uint64]bool{}
		step := uint64(1) << uint(tc.logN+1)
		for _, q := range primes {
			if seen[q] {
				t.Fatalf("duplicate prime %d", q)
			}
			seen[q] = true
			if !IsPrime(q) {
				t.Fatalf("%d not prime", q)
			}
			if q%step != 1 {
				t.Fatalf("%d != 1 mod 2N", q)
			}
		}
	}
}

func TestGeneratePrimeChain(t *testing.T) {
	sizes := []int{50, 40, 40, 40, 50}
	chain, err := GeneratePrimeChain(sizes, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != len(sizes) {
		t.Fatalf("len=%d", len(chain))
	}
	seen := map[uint64]bool{}
	for i, q := range chain {
		if seen[q] {
			t.Fatalf("duplicate prime in chain: %d", q)
		}
		seen[q] = true
		center := float64(uint64(1) << uint(sizes[i]))
		if rel := (float64(q) - center) / center; rel > 0.01 || rel < -0.01 {
			t.Fatalf("chain[%d]=%d is %.4f away from 2^%d (want within 1%%)", i, q, rel, sizes[i])
		}
	}
}

func BenchmarkMul(b *testing.B) {
	m := MustModulus(0x1fffffffffe00001)
	x, y := uint64(123456789123), uint64(987654321987)
	for i := 0; i < b.N; i++ {
		x = m.Mul(x, y)
	}
	_ = x
}

func BenchmarkMulShoup(b *testing.B) {
	m := MustModulus(0x1fffffffffe00001)
	w := uint64(987654321987)
	ws := m.ShoupPrecomp(w)
	x := uint64(123456789123)
	for i := 0; i < b.N; i++ {
		x = m.MulShoup(x, w, ws)
	}
	_ = x
}

func TestMulBarrettAgainstMul(t *testing.T) {
	for _, q := range append([]uint64{3, 5, 17, 257}, testModuli...) {
		m := MustModulus(q)
		r := rand.New(rand.NewSource(7))
		check := func(a, b uint64) {
			t.Helper()
			want := m.Mul(a, b)
			if got := m.MulBarrett(a, b); got != want {
				t.Fatalf("MulBarrett(%d,%d) mod %d = %d, want %d", a, b, q, got, want)
			}
			lazy := m.MulBarrettLazy(a, b)
			if lazy >= m.TwoQ {
				t.Fatalf("MulBarrettLazy(%d,%d) mod %d = %d >= 2q", a, b, q, lazy)
			}
			if m.ReduceTwoQ(lazy) != want {
				t.Fatalf("MulBarrettLazy(%d,%d) mod %d = %d not congruent to %d", a, b, q, lazy, want)
			}
		}
		// Boundary operands where quotient-estimate error is most likely.
		edges := []uint64{0, 1, 2, q / 2, q - 2, q - 1}
		for _, a := range edges {
			for _, b := range edges {
				check(a, b)
			}
		}
		for i := 0; i < 5000; i++ {
			check(r.Uint64()%q, r.Uint64()%q)
		}
	}
}

func TestAddLazyReduceTwoQ(t *testing.T) {
	for _, q := range testModuli {
		m := MustModulus(q)
		r := rand.New(rand.NewSource(8))
		for i := 0; i < 2000; i++ {
			a := r.Uint64() % m.TwoQ
			b := r.Uint64() % m.TwoQ
			s := m.AddLazy(a, b)
			if s >= m.TwoQ {
				t.Fatalf("AddLazy(%d,%d) = %d >= 2q (q=%d)", a, b, s, q)
			}
			if got, want := m.ReduceTwoQ(s), (a%q+b%q)%q; got != want {
				t.Fatalf("AddLazy(%d,%d) mod %d = %d, want %d", a, b, q, got, want)
			}
		}
	}
}

// TestLazyAccumulationChain exercises the intended usage pattern of the fused
// kernels: a long multiply-accumulate chain kept in [0,2q) and reduced once.
func TestLazyAccumulationChain(t *testing.T) {
	for _, q := range testModuli {
		m := MustModulus(q)
		r := rand.New(rand.NewSource(9))
		var acc, want uint64
		for i := 0; i < 256; i++ {
			a := r.Uint64() % q
			b := r.Uint64() % q
			acc = m.AddLazy(acc, m.MulBarrettLazy(a, b))
			want = m.Add(want, m.Mul(a, b))
		}
		if got := m.ReduceTwoQ(acc); got != want {
			t.Fatalf("lazy MAC chain mod %d = %d, want %d", q, got, want)
		}
	}
}

// TestMulBarrettLazyLazyOperands: the Barrett bound holds for lazy-domain
// operands (< 2q), which is what lets NTTLazy outputs feed the gadget MACs.
func TestMulBarrettLazyLazyOperands(t *testing.T) {
	for _, q := range testModuli {
		m := MustModulus(q)
		r := rand.New(rand.NewSource(11))
		check := func(a, b uint64) {
			t.Helper()
			lazy := m.MulBarrettLazy(a, b)
			if lazy >= m.TwoQ {
				t.Fatalf("MulBarrettLazy(%d,%d) mod %d = %d >= 2q", a, b, q, lazy)
			}
			if got, want := m.ReduceTwoQ(lazy), m.Mul(a%q, b%q); got != want {
				t.Fatalf("MulBarrettLazy(%d,%d) mod %d ≡ %d, want %d", a, b, q, got, want)
			}
		}
		edges := []uint64{0, 1, q - 1, q, q + 1, 2*q - 2, 2*q - 1}
		for _, a := range edges {
			for _, b := range edges {
				check(a, b)
			}
		}
		for i := 0; i < 5000; i++ {
			check(r.Uint64()%m.TwoQ, r.Uint64()%m.TwoQ)
		}
	}
}

func TestSubLazyReduceFourQ(t *testing.T) {
	for _, q := range testModuli {
		m := MustModulus(q)
		r := rand.New(rand.NewSource(12))
		for i := 0; i < 2000; i++ {
			a := r.Uint64() % m.TwoQ
			b := r.Uint64() % m.TwoQ
			d := m.SubLazy(a, b)
			if d >= 4*q {
				t.Fatalf("SubLazy(%d,%d) = %d >= 4q (q=%d)", a, b, d, q)
			}
			want := m.Sub(a%q, b%q)
			if got := m.ReduceFourQ(d); got != want {
				t.Fatalf("ReduceFourQ(SubLazy(%d,%d)) mod %d = %d, want %d", a, b, q, got, want)
			}
			lz := m.ReduceFourQLazy(d)
			if lz >= m.TwoQ {
				t.Fatalf("ReduceFourQLazy(%d) = %d >= 2q (q=%d)", d, lz, q)
			}
			if got := m.ReduceTwoQ(lz); got != want {
				t.Fatalf("ReduceFourQLazy(%d) mod %d ≡ %d, want %d", d, q, got, want)
			}
		}
	}
}

// TestVecMulBarrettKernels checks the exact row kernels against the scalar
// reference on full rows including boundary values.
func TestVecMulBarrettKernels(t *testing.T) {
	for _, q := range testModuli {
		m := MustModulus(q)
		r := rand.New(rand.NewSource(13))
		const n = 257
		a := make([]uint64, n)
		b := make([]uint64, n)
		acc := make([]uint64, n)
		for i := range a {
			a[i] = r.Uint64() % q
			b[i] = r.Uint64() % q
			acc[i] = r.Uint64() % q
		}
		a[0], b[0] = q-1, q-1
		a[1], b[1] = 0, q-1

		out := make([]uint64, n)
		m.VecMulBarrett(out, a, b)
		for i := range out {
			if want := m.Mul(a[i], b[i]); out[i] != want {
				t.Fatalf("VecMulBarrett[%d] mod %d = %d, want %d", i, q, out[i], want)
			}
		}
		// Lazy inputs (< 2q) must still give the exact product.
		la := make([]uint64, n)
		for i := range la {
			la[i] = r.Uint64() % m.TwoQ
		}
		m.VecMulBarrett(out, la, b)
		for i := range out {
			if want := m.Mul(la[i]%q, b[i]); out[i] != want {
				t.Fatalf("VecMulBarrett lazy[%d] mod %d = %d, want %d", i, q, out[i], want)
			}
		}

		addOut := append([]uint64(nil), acc...)
		m.VecMulAddBarrett(addOut, a, b)
		for i := range addOut {
			if want := m.Add(acc[i], m.Mul(a[i], b[i])); addOut[i] != want {
				t.Fatalf("VecMulAddBarrett[%d] mod %d = %d, want %d", i, q, addOut[i], want)
			}
		}
		subOut := append([]uint64(nil), acc...)
		m.VecMulSubBarrett(subOut, a, b)
		for i := range subOut {
			if want := m.Sub(acc[i], m.Mul(a[i], b[i])); subOut[i] != want {
				t.Fatalf("VecMulSubBarrett[%d] mod %d = %d, want %d", i, q, subOut[i], want)
			}
		}
	}
}

func BenchmarkMulBarrett(b *testing.B) {
	m := MustModulus(0x1fffffffffe00001)
	x, y := uint64(123456789123), uint64(987654321987)
	for i := 0; i < b.N; i++ {
		x = m.MulBarrett(x, y)
	}
	_ = x
}

func BenchmarkMulBarrettLazy(b *testing.B) {
	m := MustModulus(0x1fffffffffe00001)
	x, y := uint64(123456789123), uint64(987654321987)
	for i := 0; i < b.N; i++ {
		x = m.ReduceTwoQ(m.MulBarrettLazy(x, y))
	}
	_ = x
}
