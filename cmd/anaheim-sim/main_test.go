package main

import (
	"strings"
	"testing"
)

func TestRunSingle(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-workload", "Boot", "-platform", "a100-nearbank"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Boot") || !strings.Contains(out, "a100-nearbank") {
		t.Fatalf("output missing workload/platform:\n%s", out)
	}
	if !strings.Contains(out, "time=") || !strings.Contains(out, "energy=") {
		t.Fatalf("output missing metrics:\n%s", out)
	}
}

func TestRunAll(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-all"}, &sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(strings.TrimSpace(sb.String()), "\n") + 1
	// every workload on every platform, one line each
	if want := len(platforms) * 6; lines != want {
		t.Fatalf("got %d result lines, want %d:\n%s", lines, want, sb.String())
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-workload", "NoSuch"}, &sb); err == nil {
		t.Fatal("want error for unknown workload")
	}
	if err := run([]string{"-platform", "abacus"}, &sb); err == nil {
		t.Fatal("want error for unknown platform")
	}
	if err := run([]string{"-bogus"}, &sb); err == nil {
		t.Fatal("want error for unknown flag")
	}
}
