package ckks

import (
	"math/rand"
	"testing"

	"github.com/anaheim-sim/anaheim/internal/par"
)

// TestPipelinedSteadyStateAllocs pins the steady-state allocation counts of
// the pipelined hot chains. Recording a chain is allocation-free in steady
// state — stages are op-code structs in pooled slices, not closures — so the
// pipelined paths allocate strictly less than their barriered counterparts
// (the barriered keySwitch measures ~45 and is pinned at 48 in
// TestKeySwitchAllocs; the pipelined one measures 16). Runs serially — the
// par dispatch allocates chunk closures, which is noise here.
func TestPipelinedSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation inflates allocation counts")
	}
	prev := par.SetWorkers(1)
	defer par.SetWorkers(prev)
	prevPiped := PipelinedEnabled()
	SetPipelined(true)
	defer SetPipelined(prevPiped)

	tc := newTestContext(t, TestParameters())
	tc.kgen.GenRotationKeys(tc.sk, tc.keys, []int{3})
	r := rand.New(rand.NewSource(11))
	ct := tc.encryptVec(t, randomComplex(r, tc.params.Slots(), 1))
	lvl := ct.Level()
	rq := tc.params.RingQ()

	// Warm the polynomial, scratch, row-header, and pipeline pools.
	for i := 0; i < 4; i++ {
		d0, d1 := tc.eval.keySwitch(ct.C1, lvl, tc.keys.Rlk)
		rq.PutPoly(d0)
		rq.PutPoly(d1)
		if _, err := tc.eval.Rotate(ct, 3); err != nil {
			t.Fatal(err)
		}
		tc.eval.Rescale(ct)
	}

	// Steady state measures 16: the two NewPoly results (3 allocs each), the
	// decomposed bookkeeping, and the rescaler map lookup interface header.
	// Pipeline recording itself must stay at zero — a regression to per-stage
	// closures or unpooled stage slices jumps this by O(digits) per op.
	if allocs := testing.AllocsPerRun(20, func() {
		d0, d1 := tc.eval.keySwitch(ct.C1, lvl, tc.keys.Rlk)
		rq.PutPoly(d0)
		rq.PutPoly(d1)
	}); allocs > 20 {
		t.Errorf("pipelined keySwitch allocates %.1f objects/op, want <= 20", allocs)
	}

	// Rotate fuses the c0-add and both automorphisms into the ModDown Run;
	// measures 16 (two NewPoly outputs, ciphertext header, bookkeeping).
	if allocs := testing.AllocsPerRun(20, func() {
		if _, err := tc.eval.Rotate(ct, 3); err != nil {
			t.Fatal(err)
		}
	}); allocs > 20 {
		t.Errorf("pipelined Rotate allocates %.1f objects/op, want <= 20", allocs)
	}

	// Rescale measures 10: two NewPoly outputs, the ciphertext header, and
	// the per-call Func closure of the divide stage.
	if allocs := testing.AllocsPerRun(20, func() {
		tc.eval.Rescale(ct)
	}); allocs > 14 {
		t.Errorf("pipelined Rescale allocates %.1f objects/op, want <= 14", allocs)
	}
}
