// Package anaheim is a from-scratch Go reproduction of "Anaheim:
// Architecture and Algorithms for Processing Fully Homomorphic Encryption in
// Memory" (HPCA 2025).
//
// It bundles two subsystems behind one facade:
//
//   - A functional RNS-CKKS library (encoding, encryption, evaluation,
//     hoisted/MinKS linear transforms, full bootstrapping) — the FHE
//     substrate the paper's software framework builds on.
//
//   - A performance/energy simulator of the paper's hardware study: a
//     roofline GPU model (A100 80GB, RTX 4090), a DRAM bank-timing model,
//     and the Anaheim PIM unit (Table II ISA, column-partitioning layout,
//     Alg 1 execution), orchestrated by the §V co-execution framework.
//
// Context provides encrypted computation; Simulate and the Experiment
// helpers regenerate the paper's tables and figures.
package anaheim

import (
	"fmt"
	"sync"

	"github.com/anaheim-sim/anaheim/internal/ckks"
	"github.com/anaheim-sim/anaheim/internal/engine"
	"github.com/anaheim-sim/anaheim/internal/experiments"
	"github.com/anaheim-sim/anaheim/internal/gpu"
	"github.com/anaheim-sim/anaheim/internal/pim"
	"github.com/anaheim-sim/anaheim/internal/report"
	"github.com/anaheim-sim/anaheim/internal/sched"
	"github.com/anaheim-sim/anaheim/internal/trace"
	"github.com/anaheim-sim/anaheim/internal/workloads"
)

// Re-exported FHE types (the public API of the functional library).
type (
	// ParametersLiteral describes a CKKS parameter set.
	ParametersLiteral = ckks.ParametersLiteral
	// Parameters is a compiled parameter set.
	Parameters = ckks.Parameters
	// Ciphertext is an encrypted slot vector.
	Ciphertext = ckks.Ciphertext
	// Plaintext is an encoded slot vector.
	Plaintext = ckks.Plaintext
	// LinearTransform is a diagonal-form slot-space linear map.
	LinearTransform = ckks.LinearTransform
	// BootstrapConfig selects bootstrapping hyper-parameters.
	BootstrapConfig = ckks.BootstrapConfig
	// EvaluationKeySet bundles the relinearization and Galois keys a server
	// needs to evaluate on a client's ciphertexts.
	EvaluationKeySet = ckks.EvaluationKeySet
	// PublicKey is an RLWE public encryption key.
	PublicKey = ckks.PublicKey

	// Engine is the concurrent serving runtime (session manager, job DAG
	// scheduler, bounded worker pool). See internal/engine.
	Engine = engine.Engine
	// EngineConfig sizes the serving runtime.
	EngineConfig = engine.Config
	// EngineSession is one client's serving context inside an Engine.
	EngineSession = engine.Session
	// JobSpec describes an encrypted-compute job (op DAG over ciphertexts).
	JobSpec = engine.JobSpec
	// OpSpec is one node of a job's op DAG.
	OpSpec = engine.OpSpec
	// Job is a submitted job handle.
	Job = engine.Job
)

// NewEngine starts a serving runtime. Close it when done.
func NewEngine(cfg EngineConfig) *Engine { return engine.New(cfg) }

// NewLinearTransform builds a diagonal-form linear map over the given slot
// count.
func NewLinearTransform(slots int, diags map[int][]complex128) *LinearTransform {
	return ckks.NewLinearTransform(slots, diags)
}

// SetFusion toggles the process-wide fused ring-kernel paths (single-pass
// multiply-accumulate with lazy reduction in key switching, hoisted linear
// transforms, and the variadic addn/lincomb evaluator ops). On by default;
// turning it off selects the textbook one-op-per-pass kernels, which is what
// the fused-vs-unfused benchmarks and differential tests compare against.
func SetFusion(on bool) { ckks.SetFusion(on) }

// FusionEnabled reports whether the fused ring-kernel paths are active.
func FusionEnabled() bool { return ckks.FusionEnabled() }

// SetPipelined toggles the process-wide limb-pipelined evaluator chains:
// key switching, rotation, rescaling, and hoisted linear transforms record
// their per-limb kernel chains into a ring.Pipeline and execute whole chains
// limb-by-limb under one barrier, keeping each limb row cache-resident
// across consecutive kernels. On by default (and only active while fusion is
// on); turning it off selects the barriered one-sweep-per-kernel execution,
// which is what the pipelined-vs-barriered benchmarks and differential tests
// compare against.
func SetPipelined(on bool) { ckks.SetPipelined(on) }

// PipelinedEnabled reports whether the limb-pipelined chains are active.
func PipelinedEnabled() bool { return ckks.PipelinedEnabled() }

// SetLevelAware toggles the process-wide level-aware key-switch gadget
// plans: low-level key switches use a smaller special-modulus prefix and
// wider digits chosen from the level's noise headroom. On by default;
// turning it off pins every key switch to the legacy level-oblivious shape,
// which is what the level-aware differential tests and benchmarks compare
// against.
func SetLevelAware(on bool) { ckks.SetLevelAware(on) }

// LevelAwareEnabled reports whether level-aware key switching is active.
func LevelAwareEnabled() bool { return ckks.LevelAwareEnabled() }

// TestParameters returns a small, fast, insecure parameter set.
func TestParameters() ParametersLiteral { return ckks.TestParameters() }

// BootParameters returns an insecure parameter set with enough modulus
// budget for bootstrapping.
func BootParameters() ParametersLiteral { return ckks.BootTestParameters() }

// Context owns a key set and the engines for encrypted computation.
//
// A Context is safe for concurrent use once its keys are in place:
// evaluation ops (Add/Mul/Rotate/...) and Decrypt may be called from many
// goroutines, and Encrypt serializes its internal randomness sampler.
// Key-generation calls (GenRotationKeys, GenConjugationKey,
// SetupBootstrapping) mutate the shared key set and must complete before
// concurrent evaluation starts.
type Context struct {
	Params *Parameters

	enc  *ckks.Encoder
	kgen *ckks.KeyGenerator
	sk   *ckks.SecretKey
	pk   *ckks.PublicKey
	keys *ckks.EvaluationKeySet
	encr *ckks.Encryptor
	decr *ckks.Decryptor
	eval *ckks.Evaluator
	boot *ckks.Bootstrapper

	encMu sync.Mutex // serializes the encryptor's stateful sampler
}

// NewContext compiles parameters and generates the base keys (secret,
// public, relinearization). The seed makes the context deterministic;
// production deployments would derive it from crypto/rand.
func NewContext(lit ParametersLiteral, seed int64) (*Context, error) {
	params, err := ckks.NewParameters(lit)
	if err != nil {
		return nil, err
	}
	c := &Context{Params: params}
	c.enc = ckks.NewEncoder(params)
	c.kgen = ckks.NewKeyGenerator(params, seed)
	c.sk = c.kgen.GenSecretKey()
	c.pk = c.kgen.GenPublicKey(c.sk)
	c.keys = ckks.NewEvaluationKeySet()
	c.keys.Rlk = c.kgen.GenRelinearizationKey(c.sk)
	c.encr = ckks.NewEncryptor(params, seed+1)
	c.decr = ckks.NewDecryptor(params, c.sk)
	c.eval = ckks.NewEvaluator(params, c.keys)
	return c, nil
}

// GenRotationKeys prepares Galois keys for the given slot rotations.
func (c *Context) GenRotationKeys(rotations ...int) {
	c.kgen.GenRotationKeys(c.sk, c.keys, rotations)
}

// GenConjugationKey prepares the complex-conjugation key.
func (c *Context) GenConjugationKey() { c.kgen.GenConjugationKey(c.sk, c.keys) }

// GenLinearTransformKeys prepares exactly the Galois keys the given linear
// transforms need under the evaluator's dispatch: the BSGS baby + giant
// rotations for maps where the cost model selects a baby-step, and the raw
// diagonal offsets for the rest.
func (c *Context) GenLinearTransformKeys(lts ...*LinearTransform) {
	c.kgen.GenRotationKeys(c.sk, c.keys, ckks.GaloisKeysForLinearTransform(c.Params, lts...))
}

// EvaluationKeys returns the context's evaluation key set — the material a
// client uploads to a server (relinearization + Galois keys, no secret).
func (c *Context) EvaluationKeys() *EvaluationKeySet { return c.keys }

// PublicKey returns the encryption key.
func (c *Context) PublicKey() *PublicKey { return c.pk }

// NewServerContext builds an evaluation-only Context from a client's
// uploaded evaluation keys: it can run Add/Mul/Rotate/linear transforms but
// holds no secret or encryption key (Encrypt and Decrypt are unavailable).
// This is the trust model of the serving runtime: secrets stay client-side.
func NewServerContext(lit ParametersLiteral, keys *EvaluationKeySet) (*Context, error) {
	params, err := ckks.NewParameters(lit)
	if err != nil {
		return nil, err
	}
	if keys == nil {
		return nil, fmt.Errorf("anaheim: server context needs evaluation keys")
	}
	c := &Context{Params: params, keys: keys}
	c.enc = ckks.NewEncoder(params)
	c.eval = ckks.NewEvaluator(params, keys)
	return c, nil
}

// AttachSession registers this context's parameters and evaluation keys as
// a session of the serving runtime and returns the session handle.
func (c *Context) AttachSession(e *Engine) (*EngineSession, error) {
	s, err := e.AttachSession(c.Params, c.keys)
	if err != nil {
		return nil, err
	}
	if c.boot != nil {
		s.SetBootstrapper(c.boot)
	}
	return s, nil
}

// Encrypt encodes and encrypts a complex vector (at most N/2 values) at the
// top level and default scale. Safe for concurrent use.
func (c *Context) Encrypt(values []complex128) (*Ciphertext, error) {
	if c.encr == nil {
		return nil, fmt.Errorf("anaheim: server context has no encryption key")
	}
	pt, err := c.enc.Encode(values, c.Params.MaxLevel(), c.Params.DefaultScale())
	if err != nil {
		return nil, err
	}
	c.encMu.Lock()
	defer c.encMu.Unlock()
	return c.encr.EncryptNew(&ckks.Plaintext{Value: pt, Scale: c.Params.DefaultScale()}, c.pk), nil
}

// Decrypt returns the slot vector of a ciphertext. Safe for concurrent use.
func (c *Context) Decrypt(ct *Ciphertext) []complex128 {
	if c.decr == nil {
		panic("anaheim: server context holds no secret key and cannot decrypt")
	}
	pt := c.decr.DecryptNew(ct)
	return c.enc.Decode(pt.Value, pt.Scale)
}

// Encode produces a plaintext at the ciphertext's level for use with
// MulPlain/AddPlain.
func (c *Context) Encode(values []complex128, level int) (*Plaintext, error) {
	pt, err := c.enc.Encode(values, level, c.Params.DefaultScale())
	if err != nil {
		return nil, err
	}
	return &ckks.Plaintext{Value: pt, Scale: c.Params.DefaultScale()}, nil
}

// Add returns ct0 + ct1 (HADD).
func (c *Context) Add(ct0, ct1 *Ciphertext) *Ciphertext { return c.eval.Add(ct0, ct1) }

// Sub returns ct0 - ct1.
func (c *Context) Sub(ct0, ct1 *Ciphertext) *Ciphertext { return c.eval.Sub(ct0, ct1) }

// Mul returns ct0 ⊙ ct1 relinearized and rescaled (HMULT).
func (c *Context) Mul(ct0, ct1 *Ciphertext) *Ciphertext {
	return c.eval.Rescale(c.eval.MulRelin(ct0, ct1, nil))
}

// MulPlain returns ct ⊙ pt rescaled (PMULT).
func (c *Context) MulPlain(ct *Ciphertext, pt *Plaintext) *Ciphertext {
	return c.eval.Rescale(c.eval.MulPlain(ct, pt))
}

// AddPlain returns ct + pt.
func (c *Context) AddPlain(ct *Ciphertext, pt *Plaintext) *Ciphertext {
	return c.eval.AddPlain(ct, pt)
}

// AddConst adds a real constant to every slot.
func (c *Context) AddConst(ct *Ciphertext, v float64) *Ciphertext { return c.eval.AddConst(ct, v) }

// MulConst multiplies every slot by a real constant (one level).
func (c *Context) MulConst(ct *Ciphertext, v float64) *Ciphertext {
	qd := float64(c.Params.RingQ().Moduli[ct.Level()].Q)
	return c.eval.Rescale(c.eval.MultConst(ct, v, qd))
}

// Rotate cyclically rotates the slots by k (HROT); the rotation key must
// have been generated.
func (c *Context) Rotate(ct *Ciphertext, k int) (*Ciphertext, error) { return c.eval.Rotate(ct, k) }

// Conjugate returns the slot-wise complex conjugate.
func (c *Context) Conjugate(ct *Ciphertext) (*Ciphertext, error) { return c.eval.Conjugate(ct) }

// EvaluateLinearTransform applies a diagonal-form linear map. Dense maps run
// the double-hoisted BSGS sweep (~bs + K/bs key switches) when its keys are
// present; otherwise the per-diagonal hoisted sweep (one ModUp for all
// rotations, §III-B) is used. Keys from GenLinearTransformKeys (or rotation
// keys for lt.Rotations()) must exist.
func (c *Context) EvaluateLinearTransform(ct *Ciphertext, lt *LinearTransform) (*Ciphertext, error) {
	out, err := c.eval.EvaluateLinearTransform(ct, lt, c.enc)
	if err != nil {
		return nil, err
	}
	return c.eval.Rescale(out), nil
}

// EvaluateLinearTransformMinKS applies the map with minimum key switching:
// only the rotation-by-one key is needed.
func (c *Context) EvaluateLinearTransformMinKS(ct *Ciphertext, lt *LinearTransform) (*Ciphertext, error) {
	out, err := c.eval.EvaluateLinearTransformMinKS(ct, lt, c.enc)
	if err != nil {
		return nil, err
	}
	return c.eval.Rescale(out), nil
}

// EvaluatePolynomial evaluates f(x) ≈ Chebyshev series of the given degree
// on [a, b] slot-wise.
func (c *Context) EvaluatePolynomial(ct *Ciphertext, f func(float64) float64, a, b float64, degree int) *Ciphertext {
	coeffs := ckks.ChebyshevInterpolation(f, a, b, degree)
	return c.eval.EvaluateChebyshev(ct, coeffs, a, b)
}

// Sign approximates slot-wise sign(x) for values in [-1, 1] using the given
// number of composite polynomial iterations (three levels each).
func (c *Context) Sign(ct *Ciphertext, iterations int) *Ciphertext {
	return c.eval.EvalSign(ct, iterations)
}

// Compare approximates slot-wise (sign(a-b)+1)/2 for values in [-1/2, 1/2]:
// 1 where a > b, 0 where a < b.
func (c *Context) Compare(a, b *Ciphertext, iterations int) *Ciphertext {
	return c.eval.EvalCompare(a, b, iterations)
}

// MinMax returns the slot-wise minimum and maximum of two ciphertexts with
// values in [-1/2, 1/2] — the two-way comparator the Sort workload is built
// from ([35], §VII-A).
func (c *Context) MinMax(a, b *Ciphertext, iterations int) (*Ciphertext, *Ciphertext) {
	return c.eval.EvalMinMax(a, b, iterations)
}

// SetupBootstrapping generates all bootstrapping keys and matrices. Requires
// a parameter set with sufficient modulus budget (see BootParameters).
func (c *Context) SetupBootstrapping(cfg BootstrapConfig) error {
	b, err := ckks.NewBootstrapper(c.Params, c.enc, c.eval, c.kgen, c.sk, c.keys, cfg)
	if err != nil {
		return err
	}
	c.boot = b
	return nil
}

// DefaultBootstrapConfig returns the test-scale bootstrapping configuration.
func DefaultBootstrapConfig() BootstrapConfig { return ckks.DefaultBootstrapConfig() }

// Bootstrap refreshes an exhausted ciphertext to a high level.
func (c *Context) Bootstrap(ct *Ciphertext) (*Ciphertext, error) {
	if c.boot == nil {
		return nil, fmt.Errorf("anaheim: SetupBootstrapping has not been called")
	}
	return c.boot.Bootstrap(ct)
}

// DropToLevel discards limbs (used to emulate computation depth in demos).
func (c *Context) DropToLevel(ct *Ciphertext, level int) *Ciphertext {
	return c.eval.DropLevel(ct, level)
}

// ---------------------------------------------------------------------------
// Simulation facade

// SimPlatform names a simulated hardware configuration.
type SimPlatform string

// Supported platforms (Table III).
const (
	A100          SimPlatform = "a100"
	A100NearBank  SimPlatform = "a100-nearbank"
	A100CustomHBM SimPlatform = "a100-customhbm"
	RTX4090       SimPlatform = "rtx4090"
	RTX4090PIM    SimPlatform = "rtx4090-nearbank"
)

// SimResult summarizes one simulated workload execution.
type SimResult struct {
	Workload   string
	Platform   SimPlatform
	TimeMs     float64
	EnergyMJ   float64
	EDP        float64
	EWShare    float64
	GPUDramGB  float64
	PIMDramGB  float64
	TbootEffMs float64 // time / L_eff
	OoM        bool
}

func platformConfig(p SimPlatform) (sched.Config, float64, error) {
	switch p {
	case A100:
		return sched.Config{GPU: gpu.A100(), Lib: gpu.Cheddar()}, gpu.A100().DRAM.CapacityGB, nil
	case A100NearBank:
		u := pim.A100NearBank()
		return sched.Config{GPU: gpu.A100(), Lib: gpu.Cheddar(), PIM: &u}, gpu.A100().DRAM.CapacityGB, nil
	case A100CustomHBM:
		u := pim.A100CustomHBM()
		return sched.Config{GPU: gpu.A100(), Lib: gpu.Cheddar(), PIM: &u}, gpu.A100().DRAM.CapacityGB, nil
	case RTX4090:
		return sched.Config{GPU: gpu.RTX4090(), Lib: gpu.Cheddar()}, gpu.RTX4090().DRAM.CapacityGB, nil
	case RTX4090PIM:
		u := pim.RTX4090NearBank()
		return sched.Config{GPU: gpu.RTX4090(), Lib: gpu.Cheddar(), PIM: &u}, gpu.RTX4090().DRAM.CapacityGB, nil
	default:
		return sched.Config{}, 0, fmt.Errorf("anaheim: unknown platform %q", p)
	}
}

// Workloads lists the simulatable workload names (§VII-A).
func Workloads() []string {
	var out []string
	for _, w := range workloads.All() {
		out = append(out, w.Name)
	}
	return out
}

// Simulate runs one workload on one platform at paper-scale parameters
// (Table IV) and returns the headline metrics.
func Simulate(workload string, platform SimPlatform) (SimResult, error) {
	w, ok := workloads.ByName(workload)
	if !ok {
		return SimResult{}, fmt.Errorf("anaheim: unknown workload %q (have %v)", workload, Workloads())
	}
	cfg, capacityGB, err := platformConfig(platform)
	if err != nil {
		return SimResult{}, err
	}
	p := trace.PaperParams()
	res := SimResult{Workload: workload, Platform: platform}
	if workloads.FootprintGB(workload, p) > capacityGB {
		res.OoM = true
		return res, nil
	}
	opt := trace.GPUBaseline()
	if cfg.PIM != nil {
		opt = trace.AnaheimDefault()
	}
	r := sched.Run(w.Gen(p, opt), cfg)
	res.TimeMs = r.TimeMs()
	res.EnergyMJ = r.EnergyMJ()
	res.EDP = r.EDP()
	res.EWShare = r.EWShare()
	res.GPUDramGB = r.GPUBytes / 1e9
	res.PIMDramGB = r.PIMBytes / 1e9
	res.TbootEffMs = r.TimeMs() / float64(w.LEff)
	return res, nil
}

// ExperimentIDs lists the reproducible paper artifacts plus the two
// extension studies backing the paper's §V-C and §VI-D discussion points.
func ExperimentIDs() []string {
	return []string{"fig1-table", "fig2a", "fig2b", "fig2c", "fig3", "fig4a",
		"fig4b", "fig8", "fig9", "fig10", "table3", "table4", "table5",
		"ext-gp-pim", "ext-pipelining", "ext-memories", "ext-fusion"}
}

// RunExperiment regenerates one paper table/figure and returns its formatted
// text table.
func RunExperiment(id string) (string, error) {
	tbl, err := experimentTable(id)
	if err != nil {
		return "", err
	}
	return tbl.String(), nil
}

// RunExperimentCSV regenerates one experiment as CSV for plotting.
func RunExperimentCSV(id string) (string, error) {
	tbl, err := experimentTable(id)
	if err != nil {
		return "", err
	}
	return tbl.CSV(), nil
}

func experimentTable(id string) (*report.Table, error) {
	var tbl *report.Table
	switch id {
	case "fig1-table":
		_, tbl = experiments.Fig1Table()
	case "fig2a":
		_, tbl = experiments.Fig2a()
	case "fig2b":
		_, tbl = experiments.Fig2b()
	case "fig2c":
		_, tbl = experiments.Fig2c()
	case "fig3":
		_, tbl = experiments.Fig3()
	case "fig4a":
		_, tbl = experiments.Fig4a()
	case "fig4b":
		_, tbl = experiments.Fig4b()
	case "fig8":
		_, tbl = experiments.Fig8()
	case "fig9":
		_, tbl = experiments.Fig9()
	case "fig10":
		_, tbl = experiments.Fig10()
	case "table3":
		tbl = experiments.Table3()
	case "table4":
		tbl = experiments.Table4()
	case "table5":
		_, tbl = experiments.Table5()
	case "ext-gp-pim":
		_, tbl = experiments.ExtGeneralPurposePIM()
	case "ext-pipelining":
		_, tbl = experiments.ExtPipelining()
	case "ext-memories":
		_, tbl = experiments.ExtMemoryTechnologies()
	case "ext-fusion":
		_, tbl = experiments.ExtFusionPasses()
	default:
		return nil, fmt.Errorf("anaheim: unknown experiment %q (have %v)", id, ExperimentIDs())
	}
	return tbl, nil
}
