package engine

import (
	"fmt"
	"sync"
	"time"

	"github.com/anaheim-sim/anaheim/internal/ckks"
)

// Session is one client's serving context: compiled parameters, the
// client-uploaded evaluation keys, and the evaluator bound to them. The
// server never holds secret material — clients keep the secret key, upload
// only relinearization/Galois keys, and ship ciphertexts.
//
// A Session is safe for concurrent use: the evaluator's lazy caches are
// internally locked and every op allocates its outputs. The session mutex
// only serializes the few stateful extras (bootstrapper, transform map).
type Session struct {
	ID      string
	Params  *ckks.Parameters
	Keys    *ckks.EvaluationKeySet
	Eval    *ckks.Evaluator
	Enc     *ckks.Encoder
	Created time.Time

	mu         sync.Mutex
	boot       *ckks.Bootstrapper
	transforms map[string]*ckks.LinearTransform
}

// CreateSession compiles a parameter literal, binds the client's evaluation
// keys, and registers the session.
func (e *Engine) CreateSession(lit ckks.ParametersLiteral, keys *ckks.EvaluationKeySet) (*Session, error) {
	params, err := ckks.NewParameters(lit)
	if err != nil {
		return nil, err
	}
	return e.AttachSession(params, keys)
}

// AttachSession registers a session over already-compiled parameters (the
// embedded path, where the caller owns a full local context).
func (e *Engine) AttachSession(params *ckks.Parameters, keys *ckks.EvaluationKeySet) (*Session, error) {
	if keys == nil {
		return nil, fmt.Errorf("engine: session needs an evaluation key set")
	}
	s := &Session{
		ID:         e.newID("sess"),
		Params:     params,
		Keys:       keys,
		Eval:       ckks.NewEvaluator(params, keys),
		Enc:        ckks.NewEncoder(params),
		Created:    time.Now(),
		transforms: make(map[string]*ckks.LinearTransform),
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, ErrClosed
	}
	e.sessions[s.ID] = s
	return s, nil
}

// Session returns a registered session by ID.
func (e *Engine) Session(id string) (*Session, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, ok := e.sessions[id]
	return s, ok
}

// DropSession removes a session; running jobs keep their reference.
func (e *Engine) DropSession(id string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.sessions, id)
}

// SetBootstrapper enables the "bootstrap" op for embedded sessions (the
// HTTP path cannot: constructing a bootstrapper requires the secret key).
func (s *Session) SetBootstrapper(b *ckks.Bootstrapper) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.boot = b
}

// RegisterTransform names a linear transform for use by "lintrans" ops.
// The needed rotation keys must be present in the session's key set.
func (s *Session) RegisterTransform(name string, lt *ckks.LinearTransform) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.transforms[name] = lt
}

func (s *Session) transform(name string) (*ckks.LinearTransform, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	lt, ok := s.transforms[name]
	return lt, ok
}

// apply executes one op of a job against this session's evaluator.
func (s *Session) apply(j *Job, op *OpSpec) (*result, error) {
	out, err := s.evalOp(op, j.arg)
	if err != nil {
		return nil, err
	}
	return &result{ct: out}, nil
}

// evalOp executes one op spec against the session's evaluator, resolving
// argument names through arg. It is the single place the op vocabulary is
// given semantics — the scheduler path (apply) and the direct path the
// differential tests drive both go through it, so they cannot drift.
func (s *Session) evalOp(op *OpSpec, arg func(string) (*ckks.Ciphertext, error)) (*ckks.Ciphertext, error) {
	args := make([]*ckks.Ciphertext, len(op.Args))
	for i, a := range op.Args {
		ct, err := arg(a)
		if err != nil {
			return nil, err
		}
		args[i] = ct
	}
	ev := s.Eval
	var out *ckks.Ciphertext
	var err error
	switch op.Op {
	case "add":
		out = ev.Add(args[0], args[1])
	case "sub":
		out = ev.Sub(args[0], args[1])
	case "mul":
		out = ev.Rescale(ev.MulRelin(args[0], args[1], nil))
	case "square":
		out = ev.Rescale(ev.Square(args[0]))
	case "rotate":
		out, err = ev.Rotate(args[0], op.K)
	case "conjugate":
		out, err = ev.Conjugate(args[0])
	case "addconst":
		out = ev.AddConst(args[0], op.Val)
	case "mulconst":
		qd := float64(s.Params.RingQ().Moduli[args[0].Level()].Q)
		out = ev.Rescale(ev.MultConst(args[0], op.Val, qd))
	case "addn":
		out = ev.AddMany(args)
	case "lincomb":
		lvl := args[0].Level()
		for _, ct := range args[1:] {
			if ct.Level() < lvl {
				lvl = ct.Level()
			}
		}
		qd := float64(s.Params.RingQ().Moduli[lvl].Q)
		out = ev.Rescale(ev.MulConstAccum(args, op.Vals, qd))
	case "rescale":
		out = ev.Rescale(args[0])
	case "droplevel":
		out = ev.DropLevel(args[0], op.K)
	case "lintrans":
		lt, ok := s.transform(op.Name)
		if !ok {
			return nil, fmt.Errorf("engine: unknown transform %q", op.Name)
		}
		out, err = ev.EvaluateLinearTransformHoisted(args[0], lt, s.Enc)
		if err == nil {
			out = ev.Rescale(out)
		}
	case "bootstrap":
		s.mu.Lock()
		boot := s.boot
		s.mu.Unlock()
		if boot == nil {
			return nil, fmt.Errorf("engine: session has no bootstrapper")
		}
		out, err = boot.Bootstrap(args[0])
	default:
		err = fmt.Errorf("engine: unknown op kind %q", op.Op)
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}
