// Package pim models the Anaheim PIM unit (§VI): the modular-arithmetic
// instruction set of Table II, the column-partitioning data layout with
// PolyGroups (§VI-B, Fig 7), and the Alg-1 execution method whose ACT/PRE
// amortization is governed by the data buffer size B.
package pim

import "fmt"

// Opcode enumerates the Anaheim PIM ISA (Table II).
type Opcode int

const (
	Move Opcode = iota
	Neg
	Add
	Sub
	Mult
	MAC
	PMult
	PMAC
	CAdd
	CSub
	CMult
	CMAC
	Tensor
	TensorSq
	ModDownEp
	PAccum // PAccum⟨K⟩
	CAccum // CAccum⟨K⟩
	numOpcodes
)

var opcodeNames = [...]string{
	"Move", "Neg", "Add", "Sub", "Mult", "MAC", "PMult", "PMAC",
	"CAdd", "CSub", "CMult", "CMAC", "Tensor", "TensorSq", "ModDownEp",
	"PAccum", "CAccum",
}

func (o Opcode) String() string {
	if o < 0 || int(o) >= len(opcodeNames) {
		return fmt.Sprintf("pim.Opcode(%d)", int(o))
	}
	return opcodeNames[o]
}

// AllOpcodes returns every ISA entry (for the Fig 9 microbenchmark sweep).
func AllOpcodes() []Opcode {
	out := make([]Opcode, numOpcodes)
	for i := range out {
		out[i] = Opcode(i)
	}
	return out
}

// Phase describes one Alg-1 phase: a visit to one PolyGroup reading or
// writing `PolysTouched` polynomials, G chunks each, behind a shared row
// activation (column partitioning co-locates the group's polynomials in the
// same rows).
type Phase struct {
	PolysTouched int
	GroupPolys   int // how many polynomials share the PolyGroup (for row math)
}

// InstrSpec captures the execution shape of one instruction.
type InstrSpec struct {
	Op Opcode
	// BufferSlots is the number of G-chunk buffer regions needed; the chunk
	// granularity is G = floor(B / BufferSlots). Instructions with
	// BufferSlots > B are unsupported at that buffer size (§VII-C: "some
	// compound PIM instructions are not supported when using a small B").
	BufferSlots int
	Phases      []Phase
	// OutPolys is the number of output polynomials (normalizes iteration
	// count: one iteration produces G chunks of each output).
	OutPolys int
	// GPUAccesses is the per-G-chunk access count of the *unfused GPU
	// baseline* computing the same result: compound instructions expand to
	// K separate GPU kernels re-reading their accumulators, which is
	// exactly why PAccum/CAccum benefit most from PIM (§VII-C).
	GPUAccesses int
	// ModMuls per element (for MMAC energy/compute accounting).
	ModMuls int
}

// Spec returns the execution shape for op with fan-in k (only used by
// PAccum/CAccum; pass 0 otherwise).
func Spec(op Opcode, k int) InstrSpec {
	switch op {
	case Move, Neg:
		return InstrSpec{op, 2, []Phase{{1, 1}, {1, 1}}, 1, 2, 0}
	case Add, Sub:
		return InstrSpec{op, 3, []Phase{{2, 2}, {1, 1}}, 1, 3, 0}
	case Mult:
		return InstrSpec{op, 3, []Phase{{2, 2}, {1, 1}}, 1, 3, 1}
	case MAC:
		// c is co-located with the destination PolyGroup.
		return InstrSpec{op, 4, []Phase{{2, 2}, {2, 2}}, 1, 4, 1}
	case PMult:
		return InstrSpec{op, 5, []Phase{{1, 1}, {2, 2}, {2, 2}}, 2, 5, 2}
	case PMAC:
		return InstrSpec{op, 7, []Phase{{1, 1}, {2, 2}, {4, 4}}, 2, 7, 2}
	case CAdd, CSub:
		return InstrSpec{op, 2, []Phase{{1, 1}, {1, 1}}, 1, 2, 0}
	case CMult:
		return InstrSpec{op, 2, []Phase{{1, 1}, {1, 1}}, 1, 2, 1}
	case CMAC:
		return InstrSpec{op, 3, []Phase{{2, 2}, {1, 1}}, 1, 3, 1}
	case Tensor:
		return InstrSpec{op, 7, []Phase{{2, 2}, {2, 2}, {3, 3}}, 3, 7, 4}
	case TensorSq:
		return InstrSpec{op, 5, []Phase{{2, 2}, {3, 3}}, 3, 5, 3}
	case ModDownEp:
		// b (the BConv write-back) is co-located with the destination x.
		return InstrSpec{op, 3, []Phase{{1, 1}, {2, 2}}, 1, 3, 1}
	case PAccum:
		if k < 1 {
			k = 4
		}
		// Alg 1: load K plaintext chunks (one PolyGroup), stream 2K input
		// chunks (one PolyGroup), write the two accumulators.
		return InstrSpec{op, k + 2, []Phase{{k, k}, {2 * k, 2 * k}, {2, 2}},
			2, 7 * k, 2 * k}
	case CAccum:
		if k < 1 {
			k = 8
		}
		// Constants are broadcast in the instruction; stream 2K inputs,
		// write two accumulators.
		return InstrSpec{op, 3, []Phase{{2 * k, 2 * k}, {2, 2}}, 2, 3*k + 2, 2 * k}
	default:
		panic(fmt.Sprintf("pim: unknown opcode %v", op))
	}
}

// PIMAccesses returns the per-G chunk accesses the PIM unit performs.
func (s InstrSpec) PIMAccesses() int {
	n := 0
	for _, p := range s.Phases {
		n += p.PolysTouched
	}
	return n
}

// Supported reports whether the instruction can run with buffer size B.
func (s InstrSpec) Supported(b int) bool { return b >= s.BufferSlots }

// ChunkGranularity returns G = floor(B / slots) (Alg 1 line 1).
func (s InstrSpec) ChunkGranularity(b int) int {
	g := b / s.BufferSlots
	if g < 1 {
		g = 0
	}
	return g
}
