//go:build amd64 && !noasm

#include "textflag.h"

// AVX-512 row kernels (TierAVX512). Eight 64-bit lanes per step; requires
// AVX-512 F + DQ (VPMULLQ, VPMOVM2Q-free masked adds) and OS ZMM state
// support, both checked by cpu_amd64.go before the tier is registered.
//
// Every kernel is BIT-IDENTICAL to its pure-Go oracle in vec_ref.go /
// wide_ref.go: the Barrett quotient is the same three-partial-product sum
// with the same dropped low-word carries, and the conditional folds use the
// unsigned-min trick (min_u(r, r-bound) == r - bound iff r >= bound, since
// the subtraction wraps otherwise), which matches the scalar
// `if r >= bound { r -= bound }` exactly.
//
// Callers (vec_asm_amd64.go wrappers) guarantee len > 0 and len % 8 == 0;
// remainders run on the pure-Go kernel.
//
// Register conventions (constants broadcast once per call):
//	Z25 = 1 per lane      Z26 = 2^32 per lane
//	Z27 = q               Z28 = 2q
//	Z29 = u0 (BRedHi)     Z30 = u1 (BRedLo)
//	Z23, Z24 = per-call fixed operands (w, wShoup)
//	K1 = scratch mask

// MUL128x8: (HI, LO) = full 128-bit product A*B per lane, via four 32x32
// partial products and explicit carry propagation:
//	product = hh<<64 + (lh+hl)<<32 + ll
// with mid = lh+hl mod 2^64 (carry cm contributes 2^32 to HI) and
// LO = ll + mid<<32 (carry cl contributes 1 to HI).
// Clobbers T0, T1, T2, K1. A and B are preserved.
#define MUL128x8(A, B, HI, LO, T0, T1, T2) \
	VPSRLQ $32, A, T0       \ // ah
	VPSRLQ $32, B, T1       \ // bh
	VPMULUDQ T1, T0, HI     \ // hh = ah*bh
	VPMULUDQ B, T0, T2      \ // hl = ah*b0
	VPMULUDQ T1, A, T1      \ // lh = a0*bh
	VPMULUDQ B, A, LO       \ // ll = a0*b0
	VPADDQ T2, T1, T0       \ // mid = hl + lh
	VPCMPUQ $1, T1, T0, K1  \ // cm: mid <u lh
	VPADDQ Z26, HI, K1, HI  \ // HI += cm<<32
	VPSLLQ $32, T0, T1      \ // mid<<32
	VPSRLQ $32, T0, T0      \ // mid>>32
	VPADDQ T0, HI, HI       \
	VPADDQ T1, LO, LO       \ // LO = ll + mid<<32
	VPCMPUQ $1, T1, LO, K1  \ // cl: LO <u mid<<32
	VPADDQ Z25, HI, K1, HI

// BARRETT_T: T = quotient approximation for the 128-bit value XHI:XLO —
//	t = lo64(xhi*u0) + hi64(xlo*u0) + hi64(xhi*u1)
// (wrapping adds), identical to MulBarrettLazy / ReduceWide128Lazy.
// Clobbers H, L, T0, T1, T2, K1. XHI and XLO are preserved.
#define BARRETT_T(XHI, XLO, T, H, L, T0, T1, T2) \
	VPMULLQ Z29, XHI, T               \
	MUL128x8(XLO, Z29, H, L, T0, T1, T2) \
	VPADDQ H, T, T                    \
	MUL128x8(XHI, Z30, H, L, T0, T1, T2) \
	VPADDQ H, T, T

// CONDSUB: R = R - BOUND if R >= BOUND (unsigned-min fold). Clobbers T0.
#define CONDSUB(R, BOUND, T0) \
	VPSUBQ BOUND, R, T0 \
	VPMINUQ T0, R, R

// BCASTCONSTS loads the shared Barrett constants from the canonical stub
// argument layout (q, twoQ, u0, u1 at OFF..OFF+24) plus the 1 and 2^32
// lane constants.
#define BARRETT_CONSTS(QOFF) \
	VPBROADCASTQ q+QOFF(FP), Z27     \
	VPBROADCASTQ twoQ+(QOFF+8)(FP), Z28 \
	VPBROADCASTQ u0+(QOFF+16)(FP), Z29  \
	VPBROADCASTQ u1+(QOFF+24)(FP), Z30  \
	MOVQ $1, AX                      \
	VPBROADCASTQ AX, Z25             \
	MOVQ $0x100000000, AX            \
	VPBROADCASTQ AX, Z26

// func vecMulAddLazyAVX512(out, a, b []uint64, q, twoQ, u0, u1 uint64)
TEXT ·vecMulAddLazyAVX512(SB), NOSPLIT, $0-104
	MOVQ out_base+0(FP), DI
	MOVQ a_base+24(FP), SI
	MOVQ a_len+32(FP), CX
	MOVQ b_base+48(FP), BX
	BARRETT_CONSTS(72)
	XORQ DX, DX
mulAddLazyLoop:
	VMOVDQU64 (SI)(DX*8), Z0
	VMOVDQU64 (BX)(DX*8), Z1
	MUL128x8(Z0, Z1, Z2, Z3, Z5, Z6, Z7)      // xhi:xlo
	BARRETT_T(Z2, Z3, Z4, Z8, Z9, Z5, Z6, Z7) // t
	VPMULLQ Z27, Z4, Z5
	VPSUBQ Z5, Z3, Z0                         // r = xlo - t*q
	CONDSUB(Z0, Z28, Z5)                      // r in [0, 2q)
	VMOVDQU64 (DI)(DX*8), Z1
	VPADDQ Z1, Z0, Z0                         // s = out + r
	CONDSUB(Z0, Z28, Z5)
	VMOVDQU64 Z0, (DI)(DX*8)
	ADDQ $8, DX
	CMPQ DX, CX
	JL mulAddLazyLoop
	VZEROUPPER
	RET

// func vecMulAddLazyIdxAVX512(out, a, b []uint64, idx []uint32, q, twoQ, u0, u1 uint64)
TEXT ·vecMulAddLazyIdxAVX512(SB), NOSPLIT, $0-128
	MOVQ out_base+0(FP), DI
	MOVQ a_base+24(FP), SI
	MOVQ b_base+48(FP), BX
	MOVQ idx_base+72(FP), R8
	MOVQ idx_len+80(FP), CX
	BARRETT_CONSTS(96)
	XORQ DX, DX
mulAddLazyIdxLoop:
	VPMOVZXDQ (R8)(DX*4), Z10                 // 8 uint32 indices zero-extended to qwords
	KXNORQ K2, K2, K2                         // gather mask (consumed per use)
	VPGATHERQQ (SI)(Z10*8), K2, Z0            // a[idx[j]]
	VMOVDQU64 (BX)(DX*8), Z1
	MUL128x8(Z0, Z1, Z2, Z3, Z5, Z6, Z7)
	BARRETT_T(Z2, Z3, Z4, Z8, Z9, Z5, Z6, Z7)
	VPMULLQ Z27, Z4, Z5
	VPSUBQ Z5, Z3, Z0
	CONDSUB(Z0, Z28, Z5)
	VMOVDQU64 (DI)(DX*8), Z1
	VPADDQ Z1, Z0, Z0
	CONDSUB(Z0, Z28, Z5)
	VMOVDQU64 Z0, (DI)(DX*8)
	ADDQ $8, DX
	CMPQ DX, CX
	JL mulAddLazyIdxLoop
	VZEROUPPER
	RET

// func vecMulBarrettAVX512(out, a, b []uint64, q, twoQ, u0, u1 uint64)
TEXT ·vecMulBarrettAVX512(SB), NOSPLIT, $0-104
	MOVQ out_base+0(FP), DI
	MOVQ a_base+24(FP), SI
	MOVQ a_len+32(FP), CX
	MOVQ b_base+48(FP), BX
	BARRETT_CONSTS(72)
	XORQ DX, DX
mulBarrettLoop:
	VMOVDQU64 (SI)(DX*8), Z0
	VMOVDQU64 (BX)(DX*8), Z1
	MUL128x8(Z0, Z1, Z2, Z3, Z5, Z6, Z7)
	BARRETT_T(Z2, Z3, Z4, Z8, Z9, Z5, Z6, Z7)
	VPMULLQ Z27, Z4, Z5
	VPSUBQ Z5, Z3, Z0
	CONDSUB(Z0, Z28, Z5)
	CONDSUB(Z0, Z27, Z5)                      // exact [0, q)
	VMOVDQU64 Z0, (DI)(DX*8)
	ADDQ $8, DX
	CMPQ DX, CX
	JL mulBarrettLoop
	VZEROUPPER
	RET

// func vecMulAddBarrettAVX512(out, a, b []uint64, q, twoQ, u0, u1 uint64)
TEXT ·vecMulAddBarrettAVX512(SB), NOSPLIT, $0-104
	MOVQ out_base+0(FP), DI
	MOVQ a_base+24(FP), SI
	MOVQ a_len+32(FP), CX
	MOVQ b_base+48(FP), BX
	BARRETT_CONSTS(72)
	XORQ DX, DX
mulAddBarrettLoop:
	VMOVDQU64 (SI)(DX*8), Z0
	VMOVDQU64 (BX)(DX*8), Z1
	MUL128x8(Z0, Z1, Z2, Z3, Z5, Z6, Z7)
	BARRETT_T(Z2, Z3, Z4, Z8, Z9, Z5, Z6, Z7)
	VPMULLQ Z27, Z4, Z5
	VPSUBQ Z5, Z3, Z0
	CONDSUB(Z0, Z28, Z5)
	CONDSUB(Z0, Z27, Z5)
	VMOVDQU64 (DI)(DX*8), Z1
	VPADDQ Z1, Z0, Z0                         // s = out + r (both < q)
	CONDSUB(Z0, Z27, Z5)
	VMOVDQU64 Z0, (DI)(DX*8)
	ADDQ $8, DX
	CMPQ DX, CX
	JL mulAddBarrettLoop
	VZEROUPPER
	RET

// func vecMulSubBarrettAVX512(out, a, b []uint64, q, twoQ, u0, u1 uint64)
TEXT ·vecMulSubBarrettAVX512(SB), NOSPLIT, $0-104
	MOVQ out_base+0(FP), DI
	MOVQ a_base+24(FP), SI
	MOVQ a_len+32(FP), CX
	MOVQ b_base+48(FP), BX
	BARRETT_CONSTS(72)
	XORQ DX, DX
mulSubBarrettLoop:
	VMOVDQU64 (SI)(DX*8), Z0
	VMOVDQU64 (BX)(DX*8), Z1
	MUL128x8(Z0, Z1, Z2, Z3, Z5, Z6, Z7)
	BARRETT_T(Z2, Z3, Z4, Z8, Z9, Z5, Z6, Z7)
	VPMULLQ Z27, Z4, Z5
	VPSUBQ Z5, Z3, Z0
	CONDSUB(Z0, Z28, Z5)
	CONDSUB(Z0, Z27, Z5)                      // r in [0, q)
	VMOVDQU64 (DI)(DX*8), Z1                  // out
	VPSUBQ Z0, Z1, Z2                         // d = out - r
	VPCMPUQ $1, Z0, Z1, K1                    // borrow: out <u r
	VPADDQ Z27, Z2, K1, Z2                    // d += q where borrowed
	VMOVDQU64 Z2, (DI)(DX*8)
	ADDQ $8, DX
	CMPQ DX, CX
	JL mulSubBarrettLoop
	VZEROUPPER
	RET

// func vecMulShoupAVX512(out, a []uint64, w, wShoup, q uint64)
TEXT ·vecMulShoupAVX512(SB), NOSPLIT, $0-72
	MOVQ out_base+0(FP), DI
	MOVQ a_base+24(FP), SI
	MOVQ a_len+32(FP), CX
	VPBROADCASTQ w+48(FP), Z23
	VPBROADCASTQ wShoup+56(FP), Z24
	VPBROADCASTQ q+64(FP), Z27
	MOVQ $1, AX
	VPBROADCASTQ AX, Z25
	MOVQ $0x100000000, AX
	VPBROADCASTQ AX, Z26
	XORQ DX, DX
mulShoupLoop:
	VMOVDQU64 (SI)(DX*8), Z0
	MUL128x8(Z0, Z24, Z2, Z3, Z5, Z6, Z7)     // Z2 = hi64(a*wShoup)
	VPMULLQ Z23, Z0, Z3                       // a*w
	VPMULLQ Z27, Z2, Z4                       // hi*q
	VPSUBQ Z4, Z3, Z0                         // r in [0, 2q)
	CONDSUB(Z0, Z27, Z5)                      // exact (a < q)
	VMOVDQU64 Z0, (DI)(DX*8)
	ADDQ $8, DX
	CMPQ DX, CX
	JL mulShoupLoop
	VZEROUPPER
	RET

// func vecSubMulShoupLazyAVX512(out, a, b []uint64, w, wShoup, q, twoQ uint64)
TEXT ·vecSubMulShoupLazyAVX512(SB), NOSPLIT, $0-104
	MOVQ out_base+0(FP), DI
	MOVQ a_base+24(FP), SI
	MOVQ a_len+32(FP), CX
	MOVQ b_base+48(FP), BX
	VPBROADCASTQ w+72(FP), Z23
	VPBROADCASTQ wShoup+80(FP), Z24
	VPBROADCASTQ q+88(FP), Z27
	VPBROADCASTQ twoQ+96(FP), Z28
	MOVQ $1, AX
	VPBROADCASTQ AX, Z25
	MOVQ $0x100000000, AX
	VPBROADCASTQ AX, Z26
	XORQ DX, DX
subMulShoupLazyLoop:
	VMOVDQU64 (SI)(DX*8), Z0
	VMOVDQU64 (BX)(DX*8), Z1
	VPADDQ Z28, Z0, Z0                        // a + 2q
	VPSUBQ Z1, Z0, Z0                         // d = a + 2q - b, in (0, 3q)
	MUL128x8(Z0, Z24, Z2, Z3, Z5, Z6, Z7)     // hi64(d*wShoup)
	VPMULLQ Z23, Z0, Z3                       // d*w
	VPMULLQ Z27, Z2, Z4
	VPSUBQ Z4, Z3, Z0                         // r in [0, 2q)
	CONDSUB(Z0, Z27, Z5)
	VMOVDQU64 Z0, (DI)(DX*8)
	ADDQ $8, DX
	CMPQ DX, CX
	JL subMulShoupLazyLoop
	VZEROUPPER
	RET

// func vecRescaleStepAVX512(row, t []uint64, hf4, w, wShoup, q, u0 uint64)
// hf4 = halfModQ + 4q, precomputed by the wrapper (the same wrapping sum the
// scalar kernel forms per element).
TEXT ·vecRescaleStepAVX512(SB), NOSPLIT, $0-88
	MOVQ row_base+0(FP), DI
	MOVQ row_len+8(FP), CX
	MOVQ t_base+24(FP), SI
	VPBROADCASTQ hf4+48(FP), Z22
	VPBROADCASTQ w+56(FP), Z23
	VPBROADCASTQ wShoup+64(FP), Z24
	VPBROADCASTQ q+72(FP), Z27
	VPBROADCASTQ u0+80(FP), Z29
	MOVQ $1, AX
	VPBROADCASTQ AX, Z25
	MOVQ $0x100000000, AX
	VPBROADCASTQ AX, Z26
	XORQ DX, DX
rescaleStepLoop:
	VMOVDQU64 (SI)(DX*8), Z0                  // t[j]
	MUL128x8(Z0, Z29, Z2, Z3, Z5, Z6, Z7)     // th = hi64(t*u0) -> Z2
	VPMULLQ Z27, Z2, Z4                       // th*q
	VPSUBQ Z4, Z0, Z0                         // tm = t - th*q, in [0, 4q)
	VMOVDQU64 (DI)(DX*8), Z1                  // row[j]
	VPADDQ Z22, Z1, Z1                        // row + halfModQ + 4q
	VPSUBQ Z0, Z1, Z0                         // v in (0, 6q)
	MUL128x8(Z0, Z24, Z2, Z3, Z5, Z6, Z7)     // hi64(v*wShoup)
	VPMULLQ Z23, Z0, Z3                       // v*w
	VPMULLQ Z27, Z2, Z4
	VPSUBQ Z4, Z3, Z0                         // r in [0, 2q)
	CONDSUB(Z0, Z27, Z5)
	VMOVDQU64 Z0, (DI)(DX*8)
	ADDQ $8, DX
	CMPQ DX, CX
	JL rescaleStepLoop
	VZEROUPPER
	RET

// func vecMulWideAVX512(accHi, accLo, row []uint64, w uint64)
TEXT ·vecMulWideAVX512(SB), NOSPLIT, $0-80
	MOVQ accHi_base+0(FP), DI
	MOVQ accLo_base+24(FP), BX
	MOVQ row_base+48(FP), SI
	MOVQ row_len+56(FP), CX
	VPBROADCASTQ w+72(FP), Z23
	MOVQ $1, AX
	VPBROADCASTQ AX, Z25
	MOVQ $0x100000000, AX
	VPBROADCASTQ AX, Z26
	XORQ DX, DX
mulWideLoop:
	VMOVDQU64 (SI)(DX*8), Z0
	MUL128x8(Z0, Z23, Z2, Z3, Z5, Z6, Z7)
	VMOVDQU64 Z2, (DI)(DX*8)
	VMOVDQU64 Z3, (BX)(DX*8)
	ADDQ $8, DX
	CMPQ DX, CX
	JL mulWideLoop
	VZEROUPPER
	RET

// func vecMulAccWideAVX512(accHi, accLo, row []uint64, w uint64)
TEXT ·vecMulAccWideAVX512(SB), NOSPLIT, $0-80
	MOVQ accHi_base+0(FP), DI
	MOVQ accLo_base+24(FP), BX
	MOVQ row_base+48(FP), SI
	MOVQ row_len+56(FP), CX
	VPBROADCASTQ w+72(FP), Z23
	MOVQ $1, AX
	VPBROADCASTQ AX, Z25
	MOVQ $0x100000000, AX
	VPBROADCASTQ AX, Z26
	XORQ DX, DX
mulAccWideLoop:
	VMOVDQU64 (SI)(DX*8), Z0
	MUL128x8(Z0, Z23, Z2, Z3, Z5, Z6, Z7)     // phi:plo
	VMOVDQU64 (BX)(DX*8), Z1                  // accLo
	VPADDQ Z3, Z1, Z1                         // accLo += plo
	VPCMPUQ $1, Z3, Z1, K1                    // carry: new accLo <u plo
	VMOVDQU64 (DI)(DX*8), Z0                  // accHi
	VPADDQ Z2, Z0, Z0                         // accHi += phi
	VPADDQ Z25, Z0, K1, Z0                    // accHi += carry
	VMOVDQU64 Z0, (DI)(DX*8)
	VMOVDQU64 Z1, (BX)(DX*8)
	ADDQ $8, DX
	CMPQ DX, CX
	JL mulAccWideLoop
	VZEROUPPER
	RET

// func vecFoldWide128LazyAVX512(accHi, accLo []uint64, q, twoQ, u0, u1 uint64)
TEXT ·vecFoldWide128LazyAVX512(SB), NOSPLIT, $0-80
	MOVQ accHi_base+0(FP), DI
	MOVQ accLo_base+24(FP), BX
	MOVQ accLo_len+32(FP), CX
	BARRETT_CONSTS(48)
	VPXORQ Z21, Z21, Z21                      // zeros for accHi
	XORQ DX, DX
foldWideLoop:
	VMOVDQU64 (DI)(DX*8), Z2                  // hi
	VMOVDQU64 (BX)(DX*8), Z3                  // lo
	BARRETT_T(Z2, Z3, Z4, Z8, Z9, Z5, Z6, Z7)
	VPMULLQ Z27, Z4, Z5
	VPSUBQ Z5, Z3, Z0
	CONDSUB(Z0, Z28, Z5)
	VMOVDQU64 Z0, (BX)(DX*8)                  // accLo = lazy residue
	VMOVDQU64 Z21, (DI)(DX*8)                 // accHi = 0
	ADDQ $8, DX
	CMPQ DX, CX
	JL foldWideLoop
	VZEROUPPER
	RET

// func vecReduceWide128AVX512(dst, accHi, accLo []uint64, q, twoQ, u0, u1 uint64)
TEXT ·vecReduceWide128AVX512(SB), NOSPLIT, $0-104
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	MOVQ accHi_base+24(FP), SI
	MOVQ accLo_base+48(FP), BX
	BARRETT_CONSTS(72)
	XORQ DX, DX
reduceWideLoop:
	VMOVDQU64 (SI)(DX*8), Z2
	VMOVDQU64 (BX)(DX*8), Z3
	BARRETT_T(Z2, Z3, Z4, Z8, Z9, Z5, Z6, Z7)
	VPMULLQ Z27, Z4, Z5
	VPSUBQ Z5, Z3, Z0
	CONDSUB(Z0, Z28, Z5)
	CONDSUB(Z0, Z27, Z5)
	VMOVDQU64 Z0, (DI)(DX*8)
	ADDQ $8, DX
	CMPQ DX, CX
	JL reduceWideLoop
	VZEROUPPER
	RET

// func vecReduceWide128LazyAVX512(dst, accHi, accLo []uint64, q, twoQ, u0, u1 uint64)
TEXT ·vecReduceWide128LazyAVX512(SB), NOSPLIT, $0-104
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	MOVQ accHi_base+24(FP), SI
	MOVQ accLo_base+48(FP), BX
	BARRETT_CONSTS(72)
	XORQ DX, DX
reduceWideLazyLoop:
	VMOVDQU64 (SI)(DX*8), Z2
	VMOVDQU64 (BX)(DX*8), Z3
	BARRETT_T(Z2, Z3, Z4, Z8, Z9, Z5, Z6, Z7)
	VPMULLQ Z27, Z4, Z5
	VPSUBQ Z5, Z3, Z0
	CONDSUB(Z0, Z28, Z5)
	VMOVDQU64 Z0, (DI)(DX*8)
	ADDQ $8, DX
	CMPQ DX, CX
	JL reduceWideLazyLoop
	VZEROUPPER
	RET

// func vecReduceTwoQAVX512(p []uint64, q uint64)
TEXT ·vecReduceTwoQAVX512(SB), NOSPLIT, $0-32
	MOVQ p_base+0(FP), SI
	MOVQ p_len+8(FP), CX
	VPBROADCASTQ q+24(FP), Z27
	XORQ DX, DX
reduceTwoQLoop:
	VMOVDQU64 (SI)(DX*8), Z0
	CONDSUB(Z0, Z27, Z5)
	VMOVDQU64 Z0, (SI)(DX*8)
	ADDQ $8, DX
	CMPQ DX, CX
	JL reduceTwoQLoop
	VZEROUPPER
	RET

// func vecFwdButterflyAVX512(x, y []uint64, w, wShoup, q, twoQ uint64)
// Harvey CT butterfly over the span: x' = u + v', y' = u - v' + 2q with
// u = x cond-sub 2q and v' = MulShoupLazy(y, w) in [0, 2q).
TEXT ·vecFwdButterflyAVX512(SB), NOSPLIT, $0-80
	MOVQ x_base+0(FP), DI
	MOVQ x_len+8(FP), CX
	MOVQ y_base+24(FP), BX
	VPBROADCASTQ w+48(FP), Z23
	VPBROADCASTQ wShoup+56(FP), Z24
	VPBROADCASTQ q+64(FP), Z27
	VPBROADCASTQ twoQ+72(FP), Z28
	MOVQ $1, AX
	VPBROADCASTQ AX, Z25
	MOVQ $0x100000000, AX
	VPBROADCASTQ AX, Z26
	XORQ DX, DX
fwdButterflyLoop:
	VMOVDQU64 (DI)(DX*8), Z0                  // u
	VMOVDQU64 (BX)(DX*8), Z1                  // v
	CONDSUB(Z0, Z28, Z5)                      // u in [0, 2q)
	MUL128x8(Z1, Z24, Z2, Z3, Z5, Z6, Z7)     // h = hi64(v*wShoup)
	VPMULLQ Z23, Z1, Z3                       // v*w
	VPMULLQ Z27, Z2, Z4                       // h*q
	VPSUBQ Z4, Z3, Z1                         // v' in [0, 2q)
	VPADDQ Z1, Z0, Z2                         // x' = u + v'
	VPSUBQ Z1, Z0, Z3
	VPADDQ Z28, Z3, Z3                        // y' = u - v' + 2q
	VMOVDQU64 Z2, (DI)(DX*8)
	VMOVDQU64 Z3, (BX)(DX*8)
	ADDQ $8, DX
	CMPQ DX, CX
	JL fwdButterflyLoop
	VZEROUPPER
	RET

// func vecInvButterflyAVX512(x, y []uint64, w, wShoup, q, twoQ uint64)
// Harvey GS butterfly over the span: x' = (u+v) cond-sub 2q,
// y' = MulShoupLazy(u - v + 2q, w).
TEXT ·vecInvButterflyAVX512(SB), NOSPLIT, $0-80
	MOVQ x_base+0(FP), DI
	MOVQ x_len+8(FP), CX
	MOVQ y_base+24(FP), BX
	VPBROADCASTQ w+48(FP), Z23
	VPBROADCASTQ wShoup+56(FP), Z24
	VPBROADCASTQ q+64(FP), Z27
	VPBROADCASTQ twoQ+72(FP), Z28
	MOVQ $1, AX
	VPBROADCASTQ AX, Z25
	MOVQ $0x100000000, AX
	VPBROADCASTQ AX, Z26
	XORQ DX, DX
invButterflyLoop:
	VMOVDQU64 (DI)(DX*8), Z0                  // u
	VMOVDQU64 (BX)(DX*8), Z1                  // v
	VPADDQ Z1, Z0, Z2                         // s = u + v
	CONDSUB(Z2, Z28, Z5)                      // x' in [0, 2q)
	VPSUBQ Z1, Z0, Z3
	VPADDQ Z28, Z3, Z3                        // d = u - v + 2q
	MUL128x8(Z3, Z24, Z4, Z8, Z5, Z6, Z7)     // h = hi64(d*wShoup) -> Z4
	VPMULLQ Z23, Z3, Z5                       // d*w
	VPMULLQ Z27, Z4, Z6                       // h*q
	VPSUBQ Z6, Z5, Z3                         // y' in [0, 2q)
	VMOVDQU64 Z2, (DI)(DX*8)
	VMOVDQU64 Z3, (BX)(DX*8)
	ADDQ $8, DX
	CMPQ DX, CX
	JL invButterflyLoop
	VZEROUPPER
	RET
