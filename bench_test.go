package anaheim

// One benchmark per table and figure of the paper's evaluation (DESIGN.md
// §4). Each runs the corresponding experiment and reports the paper's
// headline quantities via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates the entire evaluation. Absolute times are the simulator's;
// the reported custom metrics are the paper-comparable numbers.

import (
	"testing"

	"github.com/anaheim-sim/anaheim/internal/experiments"
	"github.com/anaheim-sim/anaheim/internal/pim"
)

func BenchmarkFig1Table(b *testing.B) {
	var hoistReduction float64
	for i := 0; i < b.N; i++ {
		ms, _ := experiments.Fig1Table()
		byName := map[string]experiments.Fig1Metrics{}
		for _, m := range ms {
			byName[m.Alg] = m
		}
		hoistReduction = byName["Base"].NTTLimbOps / byName["Hoisting"].NTTLimbOps
	}
	b.ReportMetric(hoistReduction, "hoist-NTT-reduction-x")
}

func BenchmarkFig2aBasicFunctions(b *testing.B) {
	var cheddarHMULTus, phantomHMULTus float64
	for i := 0; i < b.N; i++ {
		ms, _ := experiments.Fig2a()
		for _, m := range ms {
			if m.Function == "HMULT" {
				switch m.Library {
				case "Cheddar":
					cheddarHMULTus = m.TimeUs
				case "Phantom":
					phantomHMULTus = m.TimeUs
				}
			}
		}
	}
	b.ReportMetric(cheddarHMULTus, "cheddar-HMULT-us")
	b.ReportMetric(phantomHMULTus/cheddarHMULTus, "cheddar-vs-phantom-x")
}

func BenchmarkFig2bTbootVsD(b *testing.B) {
	var a100D4, ewA100, ew4090 float64
	for i := 0; i < b.N; i++ {
		ms, _ := experiments.Fig2b()
		for _, m := range ms {
			if m.OoM {
				continue
			}
			if m.D == 4 {
				if m.GPU == "A100 80GB" {
					a100D4, ewA100 = m.TbootMs, m.EWShare
				} else {
					ew4090 = m.EWShare
				}
			}
		}
	}
	b.ReportMetric(a100D4, "A100-D4-Tboot-eff-ms")
	b.ReportMetric(100*ewA100, "A100-EW-share-%")
	b.ReportMetric(100*ew4090, "4090-EW-share-%")
}

func BenchmarkFig2cMinKSvsHoist(b *testing.B) {
	var hoist, minks float64
	for i := 0; i < b.N; i++ {
		ms, _ := experiments.Fig2c()
		for _, m := range ms {
			switch m.Alg {
			case "Hoist":
				hoist = m.TbootMs
			case "MinKS":
				minks = m.TbootMs
			}
		}
	}
	b.ReportMetric(hoist, "hoist-Tboot-eff-ms")
	b.ReportMetric(minks/hoist, "minks-slowdown-x")
}

func BenchmarkFig3FFTIter(b *testing.B) {
	var def, six float64
	for i := 0; i < b.N; i++ {
		ms, _ := experiments.Fig3()
		for _, m := range ms {
			switch m.Label {
			case "3&4 (default)":
				def = m.TbootMs
			case "6":
				six = m.TbootMs
			}
		}
	}
	b.ReportMetric(def, "default-mix-Tboot-eff-ms")
	b.ReportMetric(six/def, "fftIter6-degradation-x")
}

func BenchmarkFig4aLinearTransform(b *testing.B) {
	var gpuUs, pimUs, ewSpeedup float64
	for i := 0; i < b.N; i++ {
		ms, _ := experiments.Fig4a()
		byMode := map[string]experiments.Fig4aMetrics{}
		for _, m := range ms {
			byMode[m.Mode] = m
		}
		gpuUs = byMode["GPU only"].TimeUs
		pimUs = byMode["PIM"].TimeUs
		ewSpeedup = byMode["GPU only"].EWUs / byMode["PIM"].EWUs
	}
	b.ReportMetric(gpuUs/pimUs, "LT-speedup-x")
	b.ReportMetric(ewSpeedup, "EW-speedup-x")
}

func BenchmarkFig4bDRAMAccess(b *testing.B) {
	var m experiments.Fig4bMetrics
	for i := 0; i < b.N; i++ {
		m, _ = experiments.Fig4b()
	}
	b.ReportMetric(m.BaselineGB, "baseline-GB")
	b.ReportMetric(m.PIMGpuGB, "pim-gpu-side-GB")
	b.ReportMetric(m.BaselineGB/m.PIMGpuGB, "gpu-access-reduction-x")
	b.ReportMetric(m.EnergyRatio, "dram-energy-reduction-x")
}

func BenchmarkTable3Configs(b *testing.B) {
	var bwIncr float64
	for i := 0; i < b.N; i++ {
		u := pim.A100NearBank()
		bwIncr = u.BWIncrease
		_ = experiments.Table3()
	}
	b.ReportMetric(bwIncr, "A100-NB-BW-increase-x")
}

func BenchmarkFig8Workloads(b *testing.B) {
	var bootSpeedup, bootEDP, worstEDP float64
	for i := 0; i < b.N; i++ {
		ms, _ := experiments.Fig8()
		worstEDP = 1e18
		for _, m := range ms {
			if m.OoM {
				continue
			}
			if m.Platform == "A100 near-bank" && m.Workload == "Boot" {
				bootSpeedup, bootEDP = m.Speedup, m.EDPGain
			}
			if m.EDPGain < worstEDP {
				worstEDP = m.EDPGain
			}
		}
	}
	b.ReportMetric(bootSpeedup, "A100-NB-Boot-speedup-x")
	b.ReportMetric(bootEDP, "A100-NB-Boot-EDP-x")
	b.ReportMetric(worstEDP, "min-EDP-gain-x")
}

func BenchmarkFig9PIMMicro(b *testing.B) {
	var paccum, caccum float64
	for i := 0; i < b.N; i++ {
		pts, _ := experiments.Fig9()
		for _, p := range pts {
			if p.Config == "A100 near-bank" && p.B == 16 {
				switch p.Op {
				case pim.PAccum:
					paccum = p.Speedup
				case pim.CAccum:
					caccum = p.Speedup
				}
			}
		}
	}
	b.ReportMetric(paccum, "A100-PAccum4-speedup-x")
	b.ReportMetric(caccum, "A100-CAccum8-speedup-x")
}

func BenchmarkFig10Sensitivity(b *testing.B) {
	var cpSlowdown float64
	for i := 0; i < b.N; i++ {
		ms, _ := experiments.Fig10()
		var fused, noCP float64
		for _, m := range ms {
			if m.Platform == "A100 near-bank" && m.Workload == "Boot" {
				switch m.Variant {
				case "+AutFuse":
					fused = m.EWMs
				case "w/o CP":
					noCP = m.EWMs
				}
			}
		}
		cpSlowdown = noCP / fused
	}
	b.ReportMetric(cpSlowdown, "wo-CP-EW-slowdown-x")
}

func BenchmarkTable5Comparison(b *testing.B) {
	var bootMs float64
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.Table5()
		for _, r := range rows {
			if r.Measured && r.Proposal == "Anaheim (A100, near-bank)" {
				bootMs = r.BootMs
			}
		}
	}
	b.ReportMetric(bootMs, "anaheim-A100-Boot-ms")
}

// BenchmarkSimulateFacade exercises the public simulation entry point.
func BenchmarkSimulateFacade(b *testing.B) {
	var t float64
	for i := 0; i < b.N; i++ {
		r, err := Simulate("Boot", A100NearBank)
		if err != nil {
			b.Fatal(err)
		}
		t = r.TimeMs
	}
	b.ReportMetric(t, "boot-ms")
}
