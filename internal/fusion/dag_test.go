package fusion

import (
	"reflect"
	"testing"
)

func protect(ids ...string) map[string]bool {
	m := make(map[string]bool, len(ids))
	for _, id := range ids {
		m[id] = true
	}
	return m
}

func opByID(ops []Op, id string) *Op {
	for i := range ops {
		if ops[i].ID == id {
			return &ops[i]
		}
	}
	return nil
}

func TestAddLadderFolds(t *testing.T) {
	ops := []Op{
		{ID: "s1", Kind: "add", Args: []string{"a", "b"}},
		{ID: "s2", Kind: "add", Args: []string{"s1", "c"}},
		{ID: "s3", Kind: "add", Args: []string{"s2", "d"}},
	}
	out, stats := RewriteDAG(ops, protect("s3"))
	if len(out) != 1 {
		t.Fatalf("want 1 op after folding, got %d: %+v", len(out), out)
	}
	got := out[0]
	if got.ID != "s3" || got.Kind != "addn" {
		t.Fatalf("want addn op s3, got %+v", got)
	}
	if want := []string{"a", "b", "c", "d"}; !reflect.DeepEqual(got.Args, want) {
		t.Fatalf("args %v, want %v", got.Args, want)
	}
	if stats[0].Fused != 2 {
		t.Fatalf("add-ladder fused %d, want 2", stats[0].Fused)
	}
}

func TestAddLadderRespectsProtectedAndSharedUse(t *testing.T) {
	// s1 is a requested output: it must survive with its identity.
	ops := []Op{
		{ID: "s1", Kind: "add", Args: []string{"a", "b"}},
		{ID: "s2", Kind: "add", Args: []string{"s1", "c"}},
	}
	out, _ := RewriteDAG(ops, protect("s1", "s2"))
	if len(out) != 2 || out[0].Kind != "add" || out[1].Kind != "add" {
		t.Fatalf("protected intermediate was absorbed: %+v", out)
	}

	// s1 feeds two consumers: absorbing it would duplicate its computation.
	ops = []Op{
		{ID: "s1", Kind: "add", Args: []string{"a", "b"}},
		{ID: "s2", Kind: "add", Args: []string{"s1", "c"}},
		{ID: "s3", Kind: "add", Args: []string{"s1", "d"}},
	}
	out, _ = RewriteDAG(ops, protect("s2", "s3"))
	if opByID(out, "s1") == nil {
		t.Fatalf("shared intermediate was absorbed: %+v", out)
	}
}

func TestLinCombFolds(t *testing.T) {
	ops := []Op{
		{ID: "m1", Kind: "mulconst", Args: []string{"x"}, Val: 2.5},
		{ID: "m2", Kind: "mulconst", Args: []string{"y"}, Val: -1.25},
		{ID: "m3", Kind: "mulconst", Args: []string{"z"}, Val: 0.5},
		{ID: "s1", Kind: "add", Args: []string{"m1", "m2"}},
		{ID: "s2", Kind: "add", Args: []string{"s1", "m3"}},
	}
	out, _ := RewriteDAG(ops, protect("s2"))
	if len(out) != 1 {
		t.Fatalf("want 1 op, got %d: %+v", len(out), out)
	}
	got := out[0]
	if got.Kind != "lincomb" || got.ID != "s2" {
		t.Fatalf("want lincomb s2, got %+v", got)
	}
	if want := []string{"x", "y", "z"}; !reflect.DeepEqual(got.Args, want) {
		t.Fatalf("args %v, want %v", got.Args, want)
	}
	if want := []float64{2.5, -1.25, 0.5}; !reflect.DeepEqual(got.Vals, want) {
		t.Fatalf("vals %v, want %v", got.Vals, want)
	}
}

func TestLinCombRequiresAllConstTerms(t *testing.T) {
	// One operand is a plain ciphertext: the sum stays an addn.
	ops := []Op{
		{ID: "m1", Kind: "mulconst", Args: []string{"x"}, Val: 2},
		{ID: "s1", Kind: "add", Args: []string{"m1", "y"}},
	}
	out, _ := RewriteDAG(ops, protect("s1"))
	if opByID(out, "m1") == nil || opByID(out, "s1").Kind != "add" {
		t.Fatalf("partial constant sum must not fold: %+v", out)
	}

	// A mulconst that is itself an output must not be absorbed.
	ops = []Op{
		{ID: "m1", Kind: "mulconst", Args: []string{"x"}, Val: 2},
		{ID: "m2", Kind: "mulconst", Args: []string{"y"}, Val: 3},
		{ID: "s1", Kind: "add", Args: []string{"m1", "m2"}},
	}
	out, _ = RewriteDAG(ops, protect("s1", "m1"))
	if opByID(out, "m1") == nil || opByID(out, "s1").Kind != "add" {
		t.Fatalf("protected mulconst was absorbed: %+v", out)
	}
}

func TestRewriteDAGNoOpOnPlainGraphs(t *testing.T) {
	ops := []Op{
		{ID: "p", Kind: "mul", Args: []string{"a", "b"}},
		{ID: "q", Kind: "rotate", Args: []string{"p"}, K: 3},
	}
	out, stats := RewriteDAG(ops, protect("q"))
	if !reflect.DeepEqual(out, ops) {
		t.Fatalf("rewrite changed a graph with nothing to fuse: %+v", out)
	}
	for _, s := range stats {
		if s.Fused != 0 {
			t.Fatalf("pass %s reported fusions on a plain graph", s.Pass)
		}
	}
}
