package bgv

import (
	"math/rand"
	"testing"
)

type testCtx struct {
	p   *Parameters
	sk  *SecretKey
	pk  *PublicKey
	rlk *RelinKey
	ev  *Evaluator
}

func newCtx(t *testing.T) *testCtx {
	t.Helper()
	p, err := TestParameters()
	if err != nil {
		t.Fatal(err)
	}
	sk, pk, rlk := KeyGen(p, 1)
	return &testCtx{p: p, sk: sk, pk: pk, rlk: rlk, ev: NewEvaluator(p)}
}

func randSlots(r *rand.Rand, p *Parameters) []uint64 {
	v := make([]uint64, p.N())
	for i := range v {
		v[i] = r.Uint64() % p.T()
	}
	return v
}

func (tc *testCtx) encrypt(t *testing.T, v []uint64, seed int64) *Ciphertext {
	t.Helper()
	pt, err := tc.p.Encode(v)
	if err != nil {
		t.Fatal(err)
	}
	return Encrypt(tc.p, tc.pk, pt, seed)
}

func assertSlots(t *testing.T, got, want []uint64, msg string) {
	t.Helper()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: slot %d: got %d want %d", msg, i, got[i], want[i])
		}
	}
}

func TestBGVEncryptDecrypt(t *testing.T) {
	tc := newCtx(t)
	r := rand.New(rand.NewSource(1))
	v := randSlots(r, tc.p)
	ct := tc.encrypt(t, v, 2)
	assertSlots(t, Decrypt(tc.p, tc.sk, ct), v, "round trip")
}

func TestBGVAddSub(t *testing.T) {
	tc := newCtx(t)
	r := rand.New(rand.NewSource(2))
	a, b := randSlots(r, tc.p), randSlots(r, tc.p)
	cta, ctb := tc.encrypt(t, a, 3), tc.encrypt(t, b, 4)
	tmod := tc.p.T()

	sum := Decrypt(tc.p, tc.sk, tc.ev.Add(cta, ctb))
	diff := Decrypt(tc.p, tc.sk, tc.ev.Sub(cta, ctb))
	for i := range a {
		if sum[i] != (a[i]+b[i])%tmod {
			t.Fatalf("add slot %d", i)
		}
		if diff[i] != (a[i]+tmod-b[i])%tmod {
			t.Fatalf("sub slot %d", i)
		}
	}
}

func TestBGVPlainOps(t *testing.T) {
	tc := newCtx(t)
	r := rand.New(rand.NewSource(3))
	a, p := randSlots(r, tc.p), randSlots(r, tc.p)
	ct := tc.encrypt(t, a, 5)
	pt, _ := tc.p.Encode(p)
	tmod := tc.p.T()

	sum := Decrypt(tc.p, tc.sk, tc.ev.AddPlain(ct, pt))
	prod := Decrypt(tc.p, tc.sk, tc.ev.MulPlain(ct, pt))
	for i := range a {
		if sum[i] != (a[i]+p[i])%tmod {
			t.Fatalf("addplain slot %d", i)
		}
		want := uint64((uint64(a[i]) * uint64(p[i])) % tmod)
		if prod[i] != want {
			t.Fatalf("mulplain slot %d: got %d want %d", i, prod[i], want)
		}
	}
}

func TestBGVMulRelin(t *testing.T) {
	tc := newCtx(t)
	r := rand.New(rand.NewSource(4))
	a, b := randSlots(r, tc.p), randSlots(r, tc.p)
	cta, ctb := tc.encrypt(t, a, 6), tc.encrypt(t, b, 7)
	tmod := tc.p.T()

	prod := Decrypt(tc.p, tc.sk, tc.ev.MulRelin(cta, ctb, tc.rlk))
	for i := range a {
		if want := (a[i] * b[i]) % tmod; prod[i] != want {
			t.Fatalf("mul slot %d: got %d want %d", i, prod[i], want)
		}
	}
}

func TestBGVModSwitchPreservesPlaintext(t *testing.T) {
	tc := newCtx(t)
	r := rand.New(rand.NewSource(5))
	v := randSlots(r, tc.p)
	ct := tc.encrypt(t, v, 8)
	sw := tc.ev.ModSwitch(ct)
	if sw.Level() != ct.Level()-1 {
		t.Fatal("level not dropped")
	}
	assertSlots(t, Decrypt(tc.p, tc.sk, sw), v, "after modswitch")
	// Twice more.
	sw = tc.ev.ModSwitch(tc.ev.ModSwitch(sw))
	assertSlots(t, Decrypt(tc.p, tc.sk, sw), v, "after three modswitches")
}

func TestBGVMultiplicationChain(t *testing.T) {
	// Depth-3 products with modulus switching between levels: exact integer
	// results throughout.
	tc := newCtx(t)
	r := rand.New(rand.NewSource(6))
	tmod := tc.p.T()
	a, b, c, d := randSlots(r, tc.p), randSlots(r, tc.p), randSlots(r, tc.p), randSlots(r, tc.p)
	cta, ctb := tc.encrypt(t, a, 9), tc.encrypt(t, b, 10)
	ctc, ctd := tc.encrypt(t, c, 11), tc.encrypt(t, d, 12)

	ab := tc.ev.ModSwitch(tc.ev.MulRelin(cta, ctb, tc.rlk))
	cd := tc.ev.ModSwitch(tc.ev.MulRelin(ctc, ctd, tc.rlk))
	abcd := tc.ev.ModSwitch(tc.ev.MulRelin(ab, cd, tc.rlk))

	got := Decrypt(tc.p, tc.sk, abcd)
	for i := range a {
		want := a[i] % tmod
		want = want * b[i] % tmod
		want = want * c[i] % tmod
		want = want * d[i] % tmod
		if got[i] != want {
			t.Fatalf("depth-2 product slot %d: got %d want %d", i, got[i], want)
		}
	}
}

func TestBGVParametersValidation(t *testing.T) {
	if _, err := NewParameters(10, 65536, []int{50}); err == nil {
		t.Fatal("composite t must be rejected")
	}
	if _, err := NewParameters(10, 12289, []int{50}); err == nil {
		// 12289 = 12·2^10+1 ≡ 1 mod 2^11? 12288 = 6·2^11 -> it IS 1 mod 2N.
		// Use a prime that is not 1 mod 2N instead.
		t.Log("12289 is 1 mod 2^11; acceptance is correct")
	}
	if _, err := NewParameters(10, 13, []int{50}); err == nil {
		t.Fatal("t not congruent 1 mod 2N must be rejected")
	}
}

func TestBGVBatchingIsNTT(t *testing.T) {
	// Encoding then decoding without encryption is the identity, and the
	// constant vector encodes to a constant polynomial.
	p, err := TestParameters()
	if err != nil {
		t.Fatal(err)
	}
	v := make([]uint64, p.N())
	for i := range v {
		v[i] = 7
	}
	pt, err := p.Encode(v)
	if err != nil {
		t.Fatal(err)
	}
	// Constant slots -> only coefficient 0 is nonzero.
	for j := 1; j < p.N(); j++ {
		if pt.Coeffs[0][j] != 0 {
			t.Fatalf("constant encode has nonzero coefficient %d", j)
		}
	}
}

func TestBGVPermute(t *testing.T) {
	tc := newCtx(t)
	r := rand.New(rand.NewSource(7))
	v := randSlots(r, tc.p)
	ct := tc.encrypt(t, v, 13)

	for _, galEl := range []uint64{5, 25, uint64(2*tc.p.N() - 1)} {
		gk, err := GenGaloisKey(tc.p, tc.sk, galEl, 14)
		if err != nil {
			t.Fatal(err)
		}
		out := tc.ev.Permute(ct, gk)
		got := Decrypt(tc.p, tc.sk, out)
		perm := tc.p.PermutationOf(galEl)
		for i := range got {
			if got[i] != v[perm[i]] {
				t.Fatalf("galEl=%d slot %d: got %d want %d", galEl, i, got[i], v[perm[i]])
			}
		}
	}
}

func TestBGVGaloisKeyValidation(t *testing.T) {
	tc := newCtx(t)
	if _, err := GenGaloisKey(tc.p, tc.sk, 4, 1); err == nil {
		t.Fatal("even galois element must be rejected")
	}
	if _, err := GenGaloisKey(tc.p, tc.sk, uint64(4*tc.p.N()), 1); err == nil {
		t.Fatal("out-of-range galois element must be rejected")
	}
}

func TestBGVPermutationIsBijective(t *testing.T) {
	tc := newCtx(t)
	perm := tc.p.PermutationOf(5)
	seen := make([]bool, len(perm))
	for _, idx := range perm {
		if idx < 0 || idx >= len(perm) || seen[idx] {
			t.Fatal("permutation is not a bijection")
		}
		seen[idx] = true
	}
}
