// Package ntt implements the negacyclic number-theoretic transform over
// Z_q[X]/(X^N+1) for power-of-two N and NTT-friendly primes q ≡ 1 (mod 2N).
//
// The forward transform maps a coefficient vector (natural order) to its
// evaluations at the primitive 2N-th roots of unity ψ^(2·brv(i)+1), i.e. the
// output is in "bit-reversed evaluation order", the conventional layout that
// makes both butterflies access contiguous memory (Longa–Naehrig). The
// inverse transform undoes it exactly, including the 1/N scaling, which is
// premultiplied into the last inverse stage's twiddles instead of running as
// a separate pass.
//
// # Lazy reduction (Harvey butterflies)
//
// The butterflies keep coefficients in the lazy domain rather than reducing
// to [0, q) at every step (Harvey, "Faster arithmetic for number-theoretic
// transforms"; the same trick Cheddar uses on GPU and Lattigo in Go):
//
//   - forward (CT): inputs < 4q; x is conditionally reduced to [0, 2q), the
//     twiddle product w·y lands in [0, 2q) via MulShoupLazy for any y, and
//     x±w·y re-enter the [0, 4q) invariant. One conditional subtraction per
//     butterfly instead of three exact reductions.
//   - inverse (GS): values stay in [0, 2q): x+y is conditionally reduced,
//     and (x-y+2q)·w lands back in [0, 2q) via MulShoupLazy.
//
// Both require only q < 2^62; modarith guarantees q < 2^61. Exact reduction
// happens once, folded into the final stage. The Lazy entry points skip even
// that, producing [0, 2q) outputs for fused MAC chains (ring/fused.go, the
// CKKS gadget product) that tolerate lazy operands.
//
// Domains: Forward/Inverse accept [0, 2q) and produce [0, q);
// ForwardLazy/InverseLazy accept [0, 2q) and produce [0, 2q).
package ntt

import (
	"fmt"
	"math/bits"

	"github.com/anaheim-sim/anaheim/internal/modarith"
)

// Tables holds per-(q, N) precomputed twiddle factors.
type Tables struct {
	N    int
	LogN int
	Mod  modarith.Modulus

	Psi uint64 // primitive 2N-th root of unity mod q

	// psiRev[i] = ψ^brv(i), bit-reversed over logN bits; Shoup companions
	// alongside. psiInvRev likewise for ψ^{-1}.
	psiRev      []uint64
	psiRevShoup []uint64
	psiInvRev   []uint64
	psiInvShoup []uint64

	nInv      uint64 // N^{-1} mod q
	nInvShoup uint64

	// Last-inverse-stage twiddle with the 1/N scaling premultiplied:
	// psiInvRev[1]·N^{-1}. Together with nInv it folds the scaling pass
	// into the final Gentleman–Sande stage.
	wLastNInv      uint64
	wLastNInvShoup uint64
}

// NewTables builds twiddle tables for N = 2^logN and modulus q.
func NewTables(mod modarith.Modulus, logN int) (*Tables, error) {
	if logN < 1 || logN > 17 {
		return nil, fmt.Errorf("ntt: logN=%d out of range [1,17]", logN)
	}
	n := 1 << uint(logN)
	psi, err := mod.PrimitiveNthRoot(uint64(2 * n))
	if err != nil {
		return nil, fmt.Errorf("ntt: modulus %d: %w", mod.Q, err)
	}
	t := &Tables{
		N:           n,
		LogN:        logN,
		Mod:         mod,
		Psi:         psi,
		psiRev:      make([]uint64, n),
		psiRevShoup: make([]uint64, n),
		psiInvRev:   make([]uint64, n),
		psiInvShoup: make([]uint64, n),
	}
	psiInv := mod.MustInv(psi)
	fwd, inv := uint64(1), uint64(1)
	for i := 0; i < n; i++ {
		r := reverseBits(uint64(i), logN)
		t.psiRev[r] = fwd
		t.psiInvRev[r] = inv
		fwd = mod.Mul(fwd, psi)
		inv = mod.Mul(inv, psiInv)
	}
	for i := 0; i < n; i++ {
		t.psiRevShoup[i] = mod.ShoupPrecomp(t.psiRev[i])
		t.psiInvShoup[i] = mod.ShoupPrecomp(t.psiInvRev[i])
	}
	t.nInv = mod.MustInv(uint64(n))
	t.nInvShoup = mod.ShoupPrecomp(t.nInv)
	t.wLastNInv = mod.Mul(t.psiInvRev[1], t.nInv)
	t.wLastNInvShoup = mod.ShoupPrecomp(t.wLastNInv)
	return t, nil
}

func reverseBits(x uint64, n int) uint64 {
	return bits.Reverse64(x) >> uint(64-n)
}

func (t *Tables) checkLen(a []uint64, op string) {
	if len(a) != t.N {
		panic(fmt.Sprintf("ntt: %s on slice of length %d, want %d", op, len(a), t.N))
	}
}

// Forward transforms a (length N, coefficients < 2q, natural order) in place
// into bit-reversed NTT form with exact [0, q) outputs.
func (t *Tables) Forward(a []uint64) {
	t.checkLen(a, "Forward")
	t.forward(a, false)
}

// ForwardLazy is Forward with lazy outputs in [0, 2q); the exit reduction is
// skipped so fused MAC chains can consume the result directly.
func (t *Tables) ForwardLazy(a []uint64) {
	t.checkLen(a, "ForwardLazy")
	t.forward(a, true)
}

// Inverse transforms a (bit-reversed NTT form, coefficients < 2q) in place
// back to natural-order coefficients in [0, q), including the 1/N scaling
// (fused into the last stage).
func (t *Tables) Inverse(a []uint64) {
	t.checkLen(a, "Inverse")
	t.inverse(a, false)
}

// InverseLazy is Inverse with lazy outputs in [0, 2q).
func (t *Tables) InverseLazy(a []uint64) {
	t.checkLen(a, "InverseLazy")
	t.inverse(a, true)
}

func (t *Tables) forward(a []uint64, lazy bool) {
	span := t.N
	for m := 1; m < t.N; m <<= 1 {
		span >>= 1
		t.fwdStage(a, m, span, 0, m, lazy)
	}
}

func (t *Tables) inverse(a []uint64, lazy bool) {
	span := 1
	for m := t.N >> 1; m > 1; m >>= 1 {
		t.invStage(a, m, span, 0, m)
		span <<= 1
	}
	t.invStageFinal(a, 0, t.N>>1, lazy)
}

// fwdStage applies forward stage m (span = N/(2m)) to twiddle blocks
// [i0, i1). Spans ≥ 4 run on the dispatched butterfly row kernel
// (modarith.VecFwdButterflyLazy — pure Go, AVX2/AVX-512, or arm64 asm
// depending on the active tier); the span=1 final stage folds the exit
// reduction in, emitting [0, q) (exact) or [0, 2q) (lazy); all other stages
// keep the [0, 4q) butterfly invariant.
func (t *Tables) fwdStage(a []uint64, m, span, i0, i1 int, lazy bool) {
	q, twoQ := t.Mod.Q, t.Mod.TwoQ
	switch {
	case span >= 4:
		for i := i0; i < i1; i++ {
			j1 := 2 * i * span
			t.Mod.VecFwdButterflyLazy(a[j1:j1+span], a[j1+span:j1+2*span],
				t.psiRev[m+i], t.psiRevShoup[m+i])
		}
	case span == 2:
		for i := i0; i < i1; i++ {
			w, ws := t.psiRev[m+i], t.psiRevShoup[m+i]
			j1 := 4 * i
			xy := a[j1 : j1+4 : j1+4]
			u0, u1 := xy[0], xy[1]
			v0, v1 := xy[2], xy[3]
			if u0 >= twoQ {
				u0 -= twoQ
			}
			if u1 >= twoQ {
				u1 -= twoQ
			}
			h0, _ := bits.Mul64(v0, ws)
			h1, _ := bits.Mul64(v1, ws)
			v0 = v0*w - h0*q
			v1 = v1*w - h1*q
			xy[0], xy[2] = u0+v0, u0-v0+twoQ
			xy[1], xy[3] = u1+v1, u1-v1+twoQ
		}
	default: // span == 1: final stage, reduce on the way out
		for i := i0; i < i1; i++ {
			w, ws := t.psiRev[m+i], t.psiRevShoup[m+i]
			j1 := 2 * i
			xy := a[j1 : j1+2 : j1+2]
			u, v := xy[0], xy[1]
			if u >= twoQ {
				u -= twoQ
			}
			h, _ := bits.Mul64(v, ws)
			v = v*w - h*q
			s0, s1 := u+v, u-v+twoQ
			if s0 >= twoQ {
				s0 -= twoQ
			}
			if s1 >= twoQ {
				s1 -= twoQ
			}
			if !lazy {
				if s0 >= q {
					s0 -= q
				}
				if s1 >= q {
					s1 -= q
				}
			}
			xy[0], xy[1] = s0, s1
		}
	}
}

// invStage applies inverse stage m (span = N/(2m), m ≥ 2) to twiddle blocks
// [i0, i1), maintaining the [0, 2q) invariant. Spans ≥ 4 run on the
// dispatched butterfly row kernel (modarith.VecInvButterflyLazy).
func (t *Tables) invStage(a []uint64, m, span, i0, i1 int) {
	q, twoQ := t.Mod.Q, t.Mod.TwoQ
	switch {
	case span >= 4:
		for i := i0; i < i1; i++ {
			j1 := 2 * i * span
			t.Mod.VecInvButterflyLazy(a[j1:j1+span], a[j1+span:j1+2*span],
				t.psiInvRev[m+i], t.psiInvShoup[m+i])
		}
	case span == 2:
		for i := i0; i < i1; i++ {
			w, ws := t.psiInvRev[m+i], t.psiInvShoup[m+i]
			j1 := 4 * i
			xy := a[j1 : j1+4 : j1+4]
			u0, u1 := xy[0], xy[1]
			v0, v1 := xy[2], xy[3]
			s0, s1 := u0+v0, u1+v1
			if s0 >= twoQ {
				s0 -= twoQ
			}
			if s1 >= twoQ {
				s1 -= twoQ
			}
			d0, d1 := u0-v0+twoQ, u1-v1+twoQ
			h0, _ := bits.Mul64(d0, ws)
			h1, _ := bits.Mul64(d1, ws)
			xy[0], xy[2] = s0, d0*w-h0*q
			xy[1], xy[3] = s1, d1*w-h1*q
		}
	default: // span == 1: adjacent pairs
		for i := i0; i < i1; i++ {
			w, ws := t.psiInvRev[m+i], t.psiInvShoup[m+i]
			j1 := 2 * i
			xy := a[j1 : j1+2 : j1+2]
			u, v := xy[0], xy[1]
			s := u + v
			if s >= twoQ {
				s -= twoQ
			}
			d := u - v + twoQ
			h, _ := bits.Mul64(d, ws)
			xy[0], xy[1] = s, d*w-h*q
		}
	}
}

// invStageFinal runs the last inverse stage (m = 1, span = N/2) over the
// butterfly index range [jLo, jHi) ⊆ [0, N/2), with the 1/N scaling fused
// into both butterfly outputs: x' = (x+y)·N^{-1}, y' = (x-y+2q)·(w·N^{-1}).
// Both Shoup products tolerate the unreduced [0, 4q) operands, so no
// pre-reduction is needed; exact mode adds one conditional subtraction per
// output.
func (t *Tables) invStageFinal(a []uint64, jLo, jHi int, lazy bool) {
	q, twoQ := t.Mod.Q, t.Mod.TwoQ
	nInv, nInvS := t.nInv, t.nInvShoup
	w, ws := t.wLastNInv, t.wLastNInvShoup
	span := t.N >> 1
	x := a[jLo:jHi]
	y := a[span+jLo : span+jHi]
	y = y[:len(x)]
	for j := range x {
		u, v := x[j], y[j]
		s := u + v // [0, 4q): MulShoupLazy absorbs it
		h, _ := bits.Mul64(s, nInvS)
		r0 := s*nInv - h*q
		d := u - v + twoQ
		h, _ = bits.Mul64(d, ws)
		r1 := d*w - h*q
		if !lazy {
			if r0 >= q {
				r0 -= q
			}
			if r1 >= q {
				r1 -= q
			}
		}
		x[j], y[j] = r0, r1
	}
}

// MulCoeffs computes the element-wise product c = a ⊙ b of two NTT-form
// vectors (the negacyclic convolution of the underlying polynomials) with
// exact [0, q) outputs, using the Barrett reciprocal instead of the
// division-based scalar Mul. Inputs may be lazy (< 2q).
func (t *Tables) MulCoeffs(c, a, b []uint64) {
	t.checkLen(c, "MulCoeffs (out)")
	t.checkLen(a, "MulCoeffs (a)")
	t.checkLen(b, "MulCoeffs (b)")
	t.Mod.VecMulBarrett(c, a, b)
}

// MulCoeffsLazy is MulCoeffs with lazy [0, 2q) outputs for fused chains.
func (t *Tables) MulCoeffsLazy(c, a, b []uint64) {
	t.checkLen(c, "MulCoeffsLazy (out)")
	t.checkLen(a, "MulCoeffsLazy (a)")
	t.checkLen(b, "MulCoeffsLazy (b)")
	mod := t.Mod
	for i := range c {
		c[i] = mod.MulBarrettLazy(a[i], b[i])
	}
}
