package trace

import (
	"strings"
	"testing"

	"github.com/anaheim-sim/anaheim/internal/obs"
)

func TestSpanTableTree(t *testing.T) {
	spans := []obs.SpanRecord{
		{ID: 1, Name: "job", StartUnixNs: 1000, DurNs: 500, Attrs: "id=job-1"},
		{ID: 2, Parent: 1, Name: "op:mul", StartUnixNs: 1100, DurNs: 200},
		{ID: 3, Parent: 1, Name: "op:add", StartUnixNs: 1350, DurNs: 100},
	}
	out := SpanTable(spans).String()
	for _, want := range []string{"job", "  op:mul", "  op:add", "3 spans", "id=job-1"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Children render after their parent.
	if strings.Index(out, "job") > strings.Index(out, "op:mul") {
		t.Errorf("parent must precede child:\n%s", out)
	}
}

func TestSpanTableOrphans(t *testing.T) {
	// Parent 99 fell out of the ring buffer: the child must still render,
	// promoted to a root, without recursing forever.
	spans := []obs.SpanRecord{
		{ID: 5, Parent: 99, Name: "op:orphan", StartUnixNs: 0, DurNs: 1},
	}
	out := SpanTable(spans).String()
	if !strings.Contains(out, "op:orphan") {
		t.Errorf("orphan span missing:\n%s", out)
	}
}

func TestSpanTableEmpty(t *testing.T) {
	if out := SpanTable(nil).String(); out == "" {
		t.Error("empty table must still render headers")
	}
}
