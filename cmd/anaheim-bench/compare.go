package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// runCompare diffs two -micro reports op by op and reports any op whose
// ns/op slowed down by more than tolerance percent. It returns regressed =
// true (exit code 3 in main) without treating that as a hard error: the CI
// bench stage runs on shared runners whose timing jitter makes a blocking
// gate flaky, so regressions warn loudly instead of failing the build.
func runCompare(out io.Writer, basePath, newPath string, tolerance float64) (regressed bool, err error) {
	if newPath == "" {
		return false, fmt.Errorf("anaheim-bench: -compare needs -against NEW.json")
	}
	base, err := readReport(basePath)
	if err != nil {
		return false, err
	}
	cand, err := readReport(newPath)
	if err != nil {
		return false, err
	}

	baseBy := make(map[string]microResult, len(base.Results))
	for _, r := range base.Results {
		baseBy[r.Op] = r
	}

	shared := 0
	fmt.Fprintf(out, "%-20s %14s %14s %9s\n", "op", "base ns/op", "new ns/op", "delta")
	for _, n := range cand.Results {
		b, ok := baseBy[n.Op]
		if !ok {
			fmt.Fprintf(out, "%-20s %14s %14.0f %9s\n", n.Op, "-", n.NsPerOp, "new")
			continue
		}
		shared++
		delta := 0.0
		if b.NsPerOp > 0 {
			delta = (n.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
		}
		mark := ""
		if delta > tolerance {
			mark = "  REGRESSION"
			regressed = true
		}
		fmt.Fprintf(out, "%-20s %14.0f %14.0f %+8.1f%%%s\n", n.Op, b.NsPerOp, n.NsPerOp, delta, mark)
	}
	if shared == 0 {
		// Disjoint key sets mean the two files do not describe the same
		// benchmark suite (wrong artifact, renamed ops): every row would be
		// "new" and a silent exit-0 here would pass a meaningless diff.
		return false, fmt.Errorf("anaheim-bench: %s and %s share no benchmark ops — comparing different suites?",
			basePath, newPath)
	}
	if regressed {
		fmt.Fprintf(out, "\nWARNING: ops slowed down by more than %.0f%% vs %s\n", tolerance, basePath)
	}
	return regressed, nil
}

func readReport(path string) (microReport, error) {
	var rep microReport
	f, err := os.Open(path)
	if err != nil {
		return rep, fmt.Errorf("anaheim-bench: cannot read report: %w", err)
	}
	defer f.Close()
	if err := json.NewDecoder(f).Decode(&rep); err != nil {
		return rep, fmt.Errorf("anaheim-bench: %s is not a -micro JSON report: %w", path, err)
	}
	if len(rep.Results) == 0 {
		return rep, fmt.Errorf("anaheim-bench: %s has no benchmark results", path)
	}
	return rep, nil
}
