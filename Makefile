GO ?= go

.PHONY: all build vet test race bench micro fuzz bench-compare serve clean

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Paper-figure benchmarks (testing.B, one per artifact).
bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# FHE op microbenchmarks -> BENCH_PR1.json (the perf trajectory file).
micro:
	$(GO) run ./cmd/anaheim-bench -micro -o BENCH_PR1.json

# Fuzz smoke: 10s per untrusted-input decoder (CI runs the same).
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzCiphertextUnmarshal -fuzztime=$(FUZZTIME) ./internal/ckks
	$(GO) test -run=^$$ -fuzz=FuzzEvaluationKeySetUnmarshal -fuzztime=$(FUZZTIME) ./internal/ckks
	$(GO) test -run=^$$ -fuzz=FuzzJobSpecDecode -fuzztime=$(FUZZTIME) ./internal/engine

# Rerun the microbenchmarks and diff against the committed baseline.
bench-compare:
	$(GO) run ./cmd/anaheim-bench -micro -metrics -o /tmp/bench-new.json
	$(GO) run ./cmd/anaheim-bench -compare BENCH_PR1.json -against /tmp/bench-new.json

serve:
	$(GO) run ./cmd/anaheim-serve -addr :8080

clean:
	$(GO) clean ./...
