package rns

import (
	"fmt"

	"github.com/anaheim-sim/anaheim/internal/modarith"
)

// Reference implementations of the basis-conversion and rescale kernels: the
// straightforward per-coefficient loops (exact reduction after every term,
// division-based Modulus.Mul/Add) that predate the wide-accumulation
// rewrite. They are kept (a) as an independently-derived oracle for the
// differential tests and the fuzz target, and (b) so anaheim-bench can emit
// before/after pairs. Nothing on a hot path calls them.

// ConvertRef is the scalar reference for Convert: identical outputs (exact
// residues in [0, p_j)), one modmul + one modadd per inner-product term.
func (bc *BasisConverter) ConvertRef(out, in [][]uint64) {
	n := bc.checkShape(out, in)
	k := len(bc.From)
	// tmp_i = [x · qHatInv_i]_{q_i}
	tmp := make([][]uint64, k)
	for i := 0; i < k; i++ {
		qi := bc.From[i]
		row := make([]uint64, n)
		src := in[i]
		w, ws := bc.qHatInv[i], bc.qHatInvShoup[i]
		for c := 0; c < n; c++ {
			row[c] = qi.MulShoup(src[c], w, ws)
		}
		tmp[i] = row
	}
	for j := range bc.To {
		pj := bc.To[j]
		dst := out[j]
		hat := bc.qHatModTo[j]
		for c := 0; c < n; c++ {
			acc := uint64(0)
			for i := 0; i < k; i++ {
				acc = pj.Add(acc, pj.Mul(tmp[i][c]%pj.Q, hat[i]))
			}
			dst[c] = acc
		}
	}
}

// DivRoundByLastModulusRef is the scalar reference for the rescale: per-call
// inversion, per-coefficient Modulus.Add/Sub/MulShoup. Identical outputs to
// Rescaler.DivRoundByLastModulus.
func DivRoundByLastModulusRef(moduli []modarith.Modulus, rows [][]uint64) {
	l := len(rows) - 1
	if l < 1 {
		panic("rns: cannot rescale a single-limb value")
	}
	qL := moduli[l]
	half := qL.QHalf
	n := len(rows[0])
	for _, row := range rows {
		if len(row) != n {
			panic(fmt.Sprintf("rns: DivRoundByLastModulusRef row length %d, want %d", len(row), n))
		}
	}
	// t = [x + q_L/2]_{q_L}
	t := make([]uint64, n)
	for c := 0; c < n; c++ {
		t[c] = qL.Add(rows[l][c], half)
	}
	for i := 0; i < l; i++ {
		qi := moduli[i]
		inv := qi.MustInv(qL.Q % qi.Q)
		invS := qi.ShoupPrecomp(inv)
		halfModQi := half % qi.Q
		row := rows[i]
		for c := 0; c < n; c++ {
			// (x + half) mod q_i  −  t mod q_i, then exact division.
			v := qi.Sub(qi.Add(row[c], halfModQi), t[c]%qi.Q)
			row[c] = qi.MulShoup(v, inv, invS)
		}
	}
}
