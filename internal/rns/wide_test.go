package rns

import (
	"math/big"
	"math/rand"
	"testing"

	"github.com/anaheim-sim/anaheim/internal/modarith"
)

// crtReconstruct returns the unique x in [0, Q) with the given residues.
func crtReconstruct(in [][]uint64, col int, ms []modarith.Modulus) *big.Int {
	Q := basisProduct(ms)
	x := big.NewInt(0)
	for i, m := range ms {
		qi := new(big.Int).SetUint64(m.Q)
		qHat := new(big.Int).Div(Q, qi)
		inv := new(big.Int).ModInverse(qHat, qi)
		term := new(big.Int).SetUint64(in[i][col])
		term.Mul(term, inv).Mod(term, qi).Mul(term, qHat)
		x.Add(x, term)
	}
	return x.Mod(x, Q)
}

// checkConvertColumns asserts that for every column the outputs of Convert
// equal x + e·Q mod p_j for one 0 ≤ e < k consistent across all targets —
// the exact approximate-BConv contract, verified with big.Int arithmetic.
func checkConvertColumns(t *testing.T, bc *BasisConverter, out, in [][]uint64) {
	t.Helper()
	Q := basisProduct(bc.From)
	n := len(in[0])
	for c := 0; c < n; c++ {
		x := crtReconstruct(in, c, bc.From)
		found := false
		for e := int64(0); e < int64(len(bc.From)); e++ {
			v := new(big.Int).Add(x, new(big.Int).Mul(Q, big.NewInt(e)))
			ok := true
			for j := range bc.To {
				if out[j][c] != new(big.Int).Mod(v, new(big.Int).SetUint64(bc.To[j].Q)).Uint64() {
					ok = false
					break
				}
			}
			if ok {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("col %d: output is not x + e·Q for any 0 ≤ e < %d", c, len(bc.From))
		}
	}
}

func newRows(k, n int) [][]uint64 {
	rows := make([][]uint64, k)
	for i := range rows {
		rows[i] = make([]uint64, n)
	}
	return rows
}

// TestConvertMatchesRefAndContract runs the wide-accumulation kernel against
// the retired scalar oracle and the big.Int x + e·Q contract on random and
// adversarial inputs: all-zero, per-limb near-q residues (q_i − 1), x = Q−1,
// and single-limb values (residues of x < min q_i, identical across limbs).
func TestConvertMatchesRefAndContract(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, shape := range []struct{ fromBits, toBits, k, nTo int }{
		{45, 50, 4, 3},
		{50, 55, 7, 5},
		{60, 60, 3, 2}, // near the 61-bit modulus cap
	} {
		from := mustModuli(t, shape.fromBits, 9, shape.k)
		to := mustModuli(t, shape.toBits, 9, shape.nTo)
		bc, err := NewBasisConverter(from, to)
		if err != nil {
			t.Fatal(err)
		}
		// n > convTile exercises the tile loop and the ragged final tile.
		n := convTile + 33
		in := newRows(shape.k, n)
		Q := basisProduct(from)
		for c := 0; c < n; c++ {
			x := new(big.Int).Rand(r, Q)
			switch c {
			case 0: // zero
				x.SetInt64(0)
			case 1: // x = Q - 1 (every residue near its modulus)
				x.Sub(Q, big.NewInt(1))
			case 3: // single-limb value: x < min q_i, all residues equal x
				x.SetUint64(r.Uint64() % from[0].Q)
			}
			decompose(x, from, n, c, in)
		}
		// case 2: per-limb near-q residues q_i − 1 (as raw rows, not a CRT
		// decomposition of a chosen x — stresses the accumulator magnitudes).
		for i := range in {
			in[i][2] = from[i].Q - 1
		}

		got := newRows(shape.nTo, n)
		want := newRows(shape.nTo, n)
		lazy := newRows(shape.nTo, n)
		bc.Convert(got, in)
		bc.ConvertRef(want, in)
		bc.ConvertLazy(lazy, in)
		for j := range got {
			pj := to[j]
			for c := 0; c < n; c++ {
				if got[j][c] != want[j][c] {
					t.Fatalf("%d/%d-bit k=%d: target %d col %d: wide %d != ref %d",
						shape.fromBits, shape.toBits, shape.k, j, c, got[j][c], want[j][c])
				}
				lz := lazy[j][c]
				if lz >= pj.TwoQ || (lz != got[j][c] && lz != got[j][c]+pj.Q) {
					t.Fatalf("target %d col %d: lazy %d not a [0, 2q) residue of %d", j, c, lz, got[j][c])
				}
			}
		}
		checkConvertColumns(t, bc, got, in)
	}
}

// TestConvertFoldPath forces the mid-accumulation overflow guard (foldEvery)
// to fire and checks the folded chain still matches the scalar oracle. The
// white-box foldEvery override stands in for a > 2^(128-2·61)-limb digit,
// which no realistic parameter set reaches; the bound itself is asserted
// separately below.
func TestConvertFoldPath(t *testing.T) {
	from := mustModuli(t, 55, 8, 12)
	to := mustModuli(t, 50, 8, 3)
	bc, err := NewBasisConverter(from, to)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(8))
	n := 64
	in := newRows(len(from), n)
	for i := range in {
		for c := range in[i] {
			in[i][c] = r.Uint64() % from[i].Q
		}
		in[i][0] = from[i].Q - 1 // max-magnitude column
	}
	want := newRows(len(to), n)
	bc.ConvertRef(want, in)
	for _, foldEvery := range []int{2, 3, 5} {
		bc.foldEvery = foldEvery
		got := newRows(len(to), n)
		bc.Convert(got, in)
		for j := range got {
			for c := range got[j] {
				if got[j][c] != want[j][c] {
					t.Fatalf("foldEvery=%d target %d col %d: got %d want %d",
						foldEvery, j, c, got[j][c], want[j][c])
				}
			}
		}
	}
}

func TestConverterFoldBound(t *testing.T) {
	// 2^(128-b1-b2) products of b1×b2-bit factors fit a 128-bit accumulator.
	for _, tc := range []struct {
		fromBits, toBits, want int
	}{
		{60, 60, 1 << 8},
		{55, 50, 1 << 23},
		{45, 45, 1 << 31}, // capped: effectively unbounded
	} {
		from := mustModuli(t, tc.fromBits, 8, 2)
		to := mustModuli(t, tc.toBits, 8, 2)
		bc, err := NewBasisConverter(from, to)
		if err != nil {
			t.Fatal(err)
		}
		// Generated primes straddle the target size, so allow one bit more.
		if bc.foldEvery != tc.want && bc.foldEvery != tc.want>>1 && bc.foldEvery != tc.want>>2 {
			t.Fatalf("%d/%d bits: foldEvery = %d, want about %d", tc.fromBits, tc.toBits, bc.foldEvery, tc.want)
		}
		if bc.foldEvery < 2 {
			t.Fatalf("foldEvery %d would make no forward progress", bc.foldEvery)
		}
	}
}

func TestConvertShapeChecks(t *testing.T) {
	from := mustModuli(t, 45, 8, 2)
	to := mustModuli(t, 50, 8, 2)
	bc, err := NewBasisConverter(from, to)
	if err != nil {
		t.Fatal(err)
	}
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("wrong in count", func() { bc.Convert(newRows(2, 4), newRows(3, 4)) })
	mustPanic("wrong out count", func() { bc.Convert(newRows(1, 4), newRows(2, 4)) })
	in := newRows(2, 4)
	in[1] = in[1][:3]
	mustPanic("ragged in", func() { bc.Convert(newRows(2, 4), in) })
	out := newRows(2, 4)
	out[1] = out[1][:3]
	mustPanic("ragged out", func() { bc.Convert(out, newRows(2, 4)) })
	mustPanic("rescale limb mismatch", func() {
		NewRescaler(mustModuli(t, 45, 8, 3)).DivRoundByLastModulus(newRows(2, 4))
	})
	mustPanic("rescale ragged", func() {
		rows := newRows(3, 4)
		rows[0] = rows[0][:2]
		NewRescaler(mustModuli(t, 45, 8, 3)).DivRoundByLastModulus(rows)
	})
}

// TestRescalerMatchesRef runs the vectorized rescale against the scalar
// oracle on random and adversarial inputs, twice per Rescaler so the pooled
// t-row scratch gets exercised on the reuse path.
func TestRescalerMatchesRef(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for _, shape := range []struct{ bits, limbs int }{
		{45, 2}, {50, 5}, {60, 4},
	} {
		ms := mustModuli(t, shape.bits, 9, shape.limbs)
		rs := NewRescaler(ms)
		Q := basisProduct(ms)
		n := convTile + 17
		for round := 0; round < 2; round++ {
			rows := newRows(shape.limbs, n)
			for c := 0; c < n; c++ {
				x := new(big.Int).Rand(r, Q)
				switch c {
				case 0:
					x.SetInt64(0)
				case 1:
					x.Sub(Q, big.NewInt(1))
				}
				decompose(x, ms, n, c, rows)
			}
			want := make([][]uint64, shape.limbs)
			for i := range want {
				want[i] = append([]uint64(nil), rows[i]...)
			}
			DivRoundByLastModulusRef(ms, want)
			rs.DivRoundByLastModulus(rows)
			for i := 0; i < shape.limbs-1; i++ {
				for c := 0; c < n; c++ {
					if rows[i][c] != want[i][c] {
						t.Fatalf("%d-bit l=%d round %d: limb %d col %d: got %d want %d",
							shape.bits, shape.limbs, round, i, c, rows[i][c], want[i][c])
					}
				}
			}
		}
	}
}
