package ckks

import "sync/atomic"

// levelAwareDisabled gates the level-aware key-switch plans, mirroring the
// fusion toggle: zero value means enabled, so the level-aware path is the
// default and the level-oblivious pipeline remains one Store away for
// differential testing and emergency opt-out.
var levelAwareDisabled atomic.Bool

// SetLevelAware enables (true) or disables (false) level-aware key-switch
// gadget plans. When disabled, every key switch uses the legacy
// level-oblivious shape (full special modulus, digit stride α_top),
// reproducing the pre-plan pipeline exactly.
func SetLevelAware(on bool) { levelAwareDisabled.Store(!on) }

// LevelAwareEnabled reports whether level-aware key switching is active.
func LevelAwareEnabled() bool { return !levelAwareDisabled.Load() }
