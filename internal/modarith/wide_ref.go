package modarith

import "math/bits"

// Pure-Go wide-accumulation row kernels: oracle + fallback for the assembly
// tiers, same contract as vec_ref.go (bit-identical outputs required).

func vecMulWideGo(accHi, accLo, row []uint64, w uint64) {
	_ = accHi[len(row)-1]
	_ = accLo[len(row)-1]
	for j, a := range row {
		accHi[j], accLo[j] = bits.Mul64(a, w)
	}
}

func vecMulAccWideGo(accHi, accLo, row []uint64, w uint64) {
	_ = accHi[len(row)-1]
	_ = accLo[len(row)-1]
	for j, a := range row {
		phi, plo := bits.Mul64(a, w)
		lo, carry := bits.Add64(accLo[j], plo, 0)
		accLo[j] = lo
		accHi[j] += phi + carry
	}
}

func vecFoldWide128LazyGo(m Modulus, accHi, accLo []uint64) {
	_ = accHi[len(accLo)-1]
	for j := range accLo {
		accLo[j] = m.ReduceWide128Lazy(accHi[j], accLo[j])
		accHi[j] = 0
	}
}

func vecReduceWide128Go(m Modulus, dst, accHi, accLo []uint64) {
	q, twoQ, u0, u1 := m.Q, m.TwoQ, m.BRedHi, m.BRedLo
	_ = accHi[len(dst)-1]
	_ = accLo[len(dst)-1]
	for j := range dst {
		hi, lo := accHi[j], accLo[j]
		t := hi * u0
		hhi, _ := bits.Mul64(lo, u0)
		t += hhi
		hhi, _ = bits.Mul64(hi, u1)
		t += hhi
		r := lo - t*q
		if r >= twoQ {
			r -= twoQ
		}
		if r >= q {
			r -= q
		}
		dst[j] = r
	}
}

func vecReduceWide128LazyGo(m Modulus, dst, accHi, accLo []uint64) {
	q, twoQ, u0, u1 := m.Q, m.TwoQ, m.BRedHi, m.BRedLo
	_ = accHi[len(dst)-1]
	_ = accLo[len(dst)-1]
	for j := range dst {
		hi, lo := accHi[j], accLo[j]
		t := hi * u0
		hhi, _ := bits.Mul64(lo, u0)
		t += hhi
		hhi, _ = bits.Mul64(hi, u1)
		t += hhi
		r := lo - t*q
		if r >= twoQ {
			r -= twoQ
		}
		dst[j] = r
	}
}
