package ckks

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// richLevelAwareParams exercises a wide spread of plan shapes: α_top = 4
// with generous 51-bit special primes, so the selected plans range from
// (alpha 1, one digit) at level 0 through fresh P-prefix bands, including
// an alpha = α_top band whose width 5 straddles the base stride (and so
// must be freshly generated, not merged).
func richLevelAwareParams() ParametersLiteral {
	return ParametersLiteral{
		LogN:     10,
		LogQ:     []int{45, 35, 35, 35, 35, 35, 35, 35},
		LogP:     []int{51, 51, 51, 51},
		LogScale: 35,
	}
}

// mergedLevelAwareParams is shaped so the dominant band is a genuine
// digit-merged one: α_top = 2 and the mid/high levels select width 4 =
// 2·α_top with full P, which keygen realizes by summing adjacent base
// digits instead of fresh sampling.
func mergedLevelAwareParams() ParametersLiteral {
	return ParametersLiteral{
		LogN:     10,
		LogQ:     []int{28, 28, 28, 28, 28, 28, 28, 28, 28},
		LogP:     []int{59, 59},
		LogScale: 25,
	}
}

// withLevelAware runs body with the level-aware toggle pinned, restoring
// the previous state after.
func withLevelAware(on bool, body func()) {
	prev := LevelAwareEnabled()
	SetLevelAware(on)
	defer SetLevelAware(prev)
	body()
}

// ksAnalyticSlotBound is the worst-case extra slot error one key switch
// under the plan may add: each digit contributes ||ĉ_d·e_d||/P_alpha with
// ||ĉ_d|| < Q_d/2 and the validator's guarantee Q_d ≤ P_alpha, plus the
// ModDown rounding term (1+h)/2; a merged band's error grows by the merge
// factor. Coefficient error spreads across slots by at most N through the
// embedding and is divided by the scale on decode. The 32x margin absorbs
// the crudeness of the worst-case norms — the bound's job is to be
// plan-sensitive (a plan whose digit product overruns P_alpha blows it up
// by ~2^{overrun bits}), not tight.
func ksAnalyticSlotBound(p *Parameters, pl GadgetPlan) float64 {
	lp := 0.0
	for _, pm := range p.RingP().Moduli[:pl.Alpha] {
		lp += math.Log2(float64(pm.Q))
	}
	mf := 1.0
	if pl.Alpha == p.Alpha() && pl.Width%p.Alpha() == 0 && pl.Width > p.Alpha() {
		mf = float64(pl.Width / p.Alpha())
	}
	n := float64(p.N())
	digitSum := 0.0
	for d := 0; d < pl.Digits; d++ {
		lq := 0.0
		lo, hi := d*pl.Width, min((d+1)*pl.Width, pl.Level+1)
		for _, qm := range p.RingQ().Moduli[lo:hi] {
			lq += math.Log2(float64(qm.Q))
		}
		digitSum += math.Exp2(lq - lp)
	}
	coeffErr := digitSum*n*6*p.Sigma()*mf/2 + float64(1+p.HDense())/2
	return coeffErr * n / p.DefaultScale() * 32
}

// rotated returns v cyclically rotated left by k.
func rotated(v []complex128, k int) []complex128 {
	n := len(v)
	out := make([]complex128, n)
	for i := range out {
		out[i] = v[(i+k)%n]
	}
	return out
}

// TestLevelAwareDifferentialPerLevel is the core correctness harness: at
// EVERY level of both parameter chains it rotates the same ciphertext
// through the level-aware and the level-oblivious key-switch paths and
// asserts (a) both decrypt to the expected vector, (b) the level-aware
// path's measured noise stays within the legacy path's noise plus the
// plan's analytic budget, and (c) the fused/lazy kernels agree with the
// exact ones coefficient-for-coefficient.
func TestLevelAwareDifferentialPerLevel(t *testing.T) {
	for name, lit := range map[string]ParametersLiteral{
		"rich":   richLevelAwareParams(),
		"merged": mergedLevelAwareParams(),
	} {
		t.Run(name, func(t *testing.T) {
			tc := newTestContext(t, lit)
			tc.kgen.GenRotationKeys(tc.sk, tc.keys, []int{1})
			r := rand.New(rand.NewSource(42))
			v := randomComplex(r, tc.params.Slots(), 1)
			want := rotated(v, 1)
			ctTop := tc.encryptVec(t, v)

			for lvl := 0; lvl <= tc.params.MaxLevel(); lvl++ {
				ct := tc.eval.DropLevel(ctTop, lvl)
				pl := tc.params.PlanAt(lvl)

				var ctAware, ctObliv, ctAwareUnfused *Ciphertext
				withLevelAware(true, func() {
					var err error
					if ctAware, err = tc.eval.Rotate(ct, 1); err != nil {
						t.Fatalf("lvl %d: aware rotate: %v", lvl, err)
					}
					withFusion(t, false, func() {
						if ctAwareUnfused, err = tc.eval.Rotate(ct, 1); err != nil {
							t.Fatalf("lvl %d: aware unfused rotate: %v", lvl, err)
						}
					})
				})
				withLevelAware(false, func() {
					var err error
					if ctObliv, err = tc.eval.Rotate(ct, 1); err != nil {
						t.Fatalf("lvl %d: oblivious rotate: %v", lvl, err)
					}
				})

				// (c) The fused/lazy pipeline must be bit-exact against the
				// exact kernels: lazy domains defer reductions, they never
				// change the value mod q.
				if !ctAware.C0.Equal(ctAwareUnfused.C0) || !ctAware.C1.Equal(ctAwareUnfused.C1) {
					t.Fatalf("lvl %d: fused and unfused level-aware key switches disagree", lvl)
				}

				awareStats := ComputePrecision(tc.decryptVec(ctAware), want)
				oblivStats := ComputePrecision(tc.decryptVec(ctObliv), want)

				// (a) Both paths decrypt correctly. 1e-2 is the garbage cap:
				// any mis-cut digit or wrong P prefix produces O(1) noise.
				if awareStats.MaxErr > 1e-2 {
					t.Fatalf("lvl %d plan %+v: level-aware error %v", lvl, pl, awareStats)
				}
				if oblivStats.MaxErr > 1e-2 {
					t.Fatalf("lvl %d: level-oblivious error %v", lvl, oblivStats)
				}

				// (b) The level-aware noise stays within the legacy noise
				// plus the plan's analytic budget.
				bound := ksAnalyticSlotBound(tc.params, pl)
				if awareStats.MaxErr > oblivStats.MaxErr+bound {
					t.Fatalf("lvl %d plan %+v: level-aware noise %g exceeds legacy %g + analytic budget %g",
						lvl, pl, awareStats.MaxErr, oblivStats.MaxErr, bound)
				}

				// At the top level the plan is pinned to the legacy shape, so
				// the two paths must agree bit-for-bit, not just in norm.
				if lvl == tc.params.MaxLevel() {
					if !ctAware.C0.Equal(ctObliv.C0) || !ctAware.C1.Equal(ctObliv.C1) {
						t.Fatalf("top level: aware and oblivious paths diverged despite legacy pin")
					}
				}
			}
		})
	}
}

// TestLevelAwareHoistedMatchesRotate drives the shared-digit (hoisted)
// path through the same per-level differential: RotateHoisted cuts one
// decomposition for all rotations under the plan, and must agree with the
// per-rotation pipeline at every level.
func TestLevelAwareHoistedMatchesRotate(t *testing.T) {
	tc := newTestContext(t, richLevelAwareParams())
	rots := []int{1, 3}
	tc.kgen.GenRotationKeys(tc.sk, tc.keys, rots)
	r := rand.New(rand.NewSource(43))
	v := randomComplex(r, tc.params.Slots(), 1)
	ctTop := tc.encryptVec(t, v)

	for lvl := 0; lvl <= tc.params.MaxLevel(); lvl++ {
		ct := tc.eval.DropLevel(ctTop, lvl)
		withLevelAware(true, func() {
			hoisted, err := tc.eval.RotateHoisted(ct, rots)
			if err != nil {
				t.Fatalf("lvl %d: %v", lvl, err)
			}
			for _, k := range rots {
				want := rotated(v, k)
				stats := ComputePrecision(tc.decryptVec(hoisted[k]), want)
				if stats.MaxErr > 1e-2 {
					t.Fatalf("lvl %d rot %d: hoisted error %v", lvl, k, stats)
				}
				plain, err := tc.eval.Rotate(ct, k)
				if err != nil {
					t.Fatal(err)
				}
				if d := maxErr(tc.decryptVec(hoisted[k]), tc.decryptVec(plain)); d > 1e-3 {
					t.Fatalf("lvl %d rot %d: hoisted and plain rotations diverge by %g", lvl, k, d)
				}
			}
		})
	}
}

// TestLevelAwareRelinDifferential runs the relinearization key switch
// (MulRelin) through both paths at every level with enough modulus
// headroom for the squared scale.
func TestLevelAwareRelinDifferential(t *testing.T) {
	tc := newTestContext(t, richLevelAwareParams())
	r := rand.New(rand.NewSource(44))
	v := randomComplex(r, tc.params.Slots(), 1)
	want := make([]complex128, len(v))
	for i := range v {
		want[i] = v[i] * v[i]
	}
	ctTop := tc.encryptVec(t, v)

	logScale := math.Log2(tc.params.DefaultScale())
	for lvl := 0; lvl <= tc.params.MaxLevel(); lvl++ {
		// The unrescaled product lives at scale Δ²; skip levels whose
		// modulus cannot hold it.
		bits := 0.0
		for _, qm := range tc.params.RingQ().Moduli[:lvl+1] {
			bits += math.Log2(float64(qm.Q))
		}
		if bits < 2*logScale+8 {
			continue
		}
		ct := tc.eval.DropLevel(ctTop, lvl)
		var sqAware, sqObliv *Ciphertext
		withLevelAware(true, func() { sqAware = tc.eval.Square(ct) })
		withLevelAware(false, func() { sqObliv = tc.eval.Square(ct) })
		awareStats := ComputePrecision(tc.decryptVec(sqAware), want)
		oblivStats := ComputePrecision(tc.decryptVec(sqObliv), want)
		if awareStats.MaxErr > 1e-2 {
			t.Fatalf("lvl %d: level-aware relin error %v", lvl, awareStats)
		}
		bound := ksAnalyticSlotBound(tc.params, tc.params.PlanAt(lvl))
		if awareStats.MaxErr > oblivStats.MaxErr+bound {
			t.Fatalf("lvl %d: relin noise %g exceeds legacy %g + budget %g",
				lvl, awareStats.MaxErr, oblivStats.MaxErr, bound)
		}
	}
}

// TestLevelAwareFallbackWithoutBands pins the safety property for keys that
// predate the band format (e.g. unmarshalled old blobs): with bands
// stripped, the evaluator must silently fall back to the legacy shape and
// stay correct at every level — never panic, never mis-cut digits.
func TestLevelAwareFallbackWithoutBands(t *testing.T) {
	tc := newTestContext(t, richLevelAwareParams())
	tc.kgen.GenRotationKeys(tc.sk, tc.keys, []int{1})
	for _, k := range tc.keys.Gal {
		k.Bands = nil
	}
	tc.keys.Rlk.Bands = nil
	r := rand.New(rand.NewSource(45))
	v := randomComplex(r, tc.params.Slots(), 1)
	want := rotated(v, 1)
	ctTop := tc.encryptVec(t, v)
	withLevelAware(true, func() {
		for lvl := 0; lvl <= tc.params.MaxLevel(); lvl++ {
			ct := tc.eval.DropLevel(ctTop, lvl)
			got, err := tc.eval.Rotate(ct, 1)
			if err != nil {
				t.Fatalf("lvl %d: %v", lvl, err)
			}
			if stats := ComputePrecision(tc.decryptVec(got), want); stats.MaxErr > 1e-2 {
				t.Fatalf("lvl %d: bandless fallback error %v", lvl, stats)
			}
		}
	})
}

// TestGadgetPlanSelection pins the selection invariants every parameter set
// must satisfy: the top level is legacy; every non-legacy plan validates
// and is strictly cheaper than legacy; every non-legacy shape has a band
// covering its highest level; bands are deduplicated and sorted.
func TestGadgetPlanSelection(t *testing.T) {
	for name, lit := range map[string]ParametersLiteral{
		"test":   TestParameters(),
		"boot":   BootTestParameters(),
		"rich":   richLevelAwareParams(),
		"merged": mergedLevelAwareParams(),
	} {
		t.Run(name, func(t *testing.T) {
			p, err := NewParameters(lit)
			if err != nil {
				t.Fatal(err)
			}
			if !p.IsLegacyPlan(p.PlanAt(p.MaxLevel())) {
				t.Fatalf("top-level plan %+v is not legacy", p.PlanAt(p.MaxLevel()))
			}
			sawNonLegacy := false
			for lvl := 0; lvl <= p.MaxLevel(); lvl++ {
				pl := p.PlanAt(lvl)
				if pl.Level != lvl {
					t.Fatalf("PlanAt(%d).Level = %d", lvl, pl.Level)
				}
				if pl.Digits != (lvl+pl.Width)/pl.Width {
					t.Fatalf("lvl %d: digits %d inconsistent with width %d", lvl, pl.Digits, pl.Width)
				}
				if p.IsLegacyPlan(pl) {
					continue
				}
				sawNonLegacy = true
				if err := p.ValidateGadgetPlan(pl.Level, pl.Alpha, pl.Digits); err != nil {
					t.Fatalf("selected plan %+v does not validate: %v", pl, err)
				}
				if c, lc := planCost(pl), planCost(p.LegacyPlanAt(lvl)); c >= lc {
					t.Fatalf("selected plan %+v cost %d not below legacy %d", pl, c, lc)
				}
				found := false
				for _, b := range p.GadgetBands() {
					if b.Alpha == pl.Alpha && b.Width == pl.Width && b.TopLevel >= lvl {
						found = true
					}
				}
				if !found {
					t.Fatalf("no band serves plan %+v", pl)
				}
			}
			if !sawNonLegacy {
				t.Fatalf("%s: expected at least one non-legacy plan", name)
			}
			bands := p.GadgetBands()
			for i := 1; i < len(bands); i++ {
				a, b := bands[i-1], bands[i]
				if a.Alpha > b.Alpha || (a.Alpha == b.Alpha && a.Width >= b.Width) {
					t.Fatalf("bands not strictly sorted: %+v before %+v", a, b)
				}
			}
		})
	}
}

// TestSwitchingKeyBandMarshalRoundTrip covers the extended wire format:
// banded keys round-trip with band shapes and coefficients intact, and a
// pre-band blob (base digits only) decodes with Bands nil so the evaluator
// falls back to legacy for it.
func TestSwitchingKeyBandMarshalRoundTrip(t *testing.T) {
	tc := newTestContext(t, richLevelAwareParams())
	key := tc.keys.Rlk
	if len(key.Bands) == 0 {
		t.Fatal("expected banded relinearization key")
	}
	blob, err := key.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back SwitchingKey
	if err := back.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if back.Digits() != key.Digits() || len(back.Bands) != len(key.Bands) {
		t.Fatalf("round trip changed shape: digits %d->%d bands %d->%d",
			key.Digits(), back.Digits(), len(key.Bands), len(back.Bands))
	}
	for i, b := range key.Bands {
		rb := back.Bands[i]
		if rb.Alpha != b.Alpha || rb.Width != b.Width || len(rb.BQ) != len(b.BQ) {
			t.Fatalf("band %d shape changed: (%d,%d,%d) -> (%d,%d,%d)",
				i, b.Alpha, b.Width, len(b.BQ), rb.Alpha, rb.Width, len(rb.BQ))
		}
		for d := range b.BQ {
			if !rb.BQ[d].Equal(b.BQ[d]) || !rb.AQ[d].Equal(b.AQ[d]) ||
				!rb.BP[d].Equal(b.BP[d]) || !rb.AP[d].Equal(b.AP[d]) {
				t.Fatalf("band %d digit %d coefficients changed", i, d)
			}
		}
	}

	// A pre-band blob is exactly the base-digit section.
	legacy := &SwitchingKey{BQ: key.BQ, AQ: key.AQ, BP: key.BP, AP: key.AP}
	oldBlob, err := legacy.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var old SwitchingKey
	if err := old.UnmarshalBinary(oldBlob); err != nil {
		t.Fatalf("pre-band blob rejected: %v", err)
	}
	if old.Bands != nil {
		t.Fatalf("pre-band blob produced %d bands", len(old.Bands))
	}
}

// fuzzPlanParams lazily builds the parameter sets FuzzGadgetPlan probes
// (construction is too slow to repeat per fuzz input).
var fuzzPlanParams struct {
	once sync.Once
	sets []*Parameters
}

func getFuzzPlanParams(t testing.TB) []*Parameters {
	fuzzPlanParams.once.Do(func() {
		for _, lit := range []ParametersLiteral{
			TestParameters(),
			richLevelAwareParams(),
			mergedLevelAwareParams(),
		} {
			p, err := NewParameters(lit)
			if err != nil {
				t.Fatal(err)
			}
			fuzzPlanParams.sets = append(fuzzPlanParams.sets, p)
		}
	})
	return fuzzPlanParams.sets
}

// FuzzGadgetPlan cross-checks the exact big.Int plan validator against an
// independent float-log2 model over arbitrary (level, alpha, dnum) tuples:
// accepted plans must be in-range, tile the level exactly, and keep every
// digit within ~P_alpha; rejections with every digit clearly below the
// prefix (0.5-bit dead band against float rounding) are validator bugs.
// Accepted plans must also stay accepted when the P prefix grows.
func FuzzGadgetPlan(f *testing.F) {
	f.Add(uint8(0), uint8(1), uint8(1))
	f.Add(uint8(3), uint8(2), uint8(2))
	f.Add(uint8(7), uint8(4), uint8(2))
	f.Add(uint8(255), uint8(255), uint8(255))
	f.Fuzz(func(t *testing.T, level, alpha, dnum uint8) {
		for _, p := range getFuzzPlanParams(t) {
			lvl, a, d := int(level), int(alpha), int(dnum)
			err := p.ValidateGadgetPlan(lvl, a, d)

			inRange := lvl >= 0 && lvl <= p.MaxLevel() &&
				a >= 1 && a <= p.Alpha() &&
				d >= 1 && d <= lvl+1
			if !inRange {
				if err == nil {
					t.Fatalf("out-of-range plan (%d,%d,%d) accepted", lvl, a, d)
				}
				continue
			}
			width := (lvl + d) / d
			tiles := (lvl+width)/width == d
			if !tiles && err == nil {
				t.Fatalf("non-tiling plan (%d,%d,%d) accepted", lvl, a, d)
			}
			if !tiles {
				continue
			}

			lp := 0.0
			for _, pm := range p.RingP().Moduli[:a] {
				lp += math.Log2(float64(pm.Q))
			}
			maxGroup, minSlack := 0.0, math.Inf(1)
			for g := 0; g < d; g++ {
				lq := 0.0
				lo, hi := g*width, min((g+1)*width, lvl+1)
				for _, qm := range p.RingQ().Moduli[lo:hi] {
					lq += math.Log2(float64(qm.Q))
				}
				if lq > maxGroup {
					maxGroup = lq
				}
				if s := lp - lq; s < minSlack {
					minSlack = s
				}
			}
			if err == nil && maxGroup > lp+0.5 {
				t.Fatalf("plan (%d,%d,%d) accepted with digit %f bits over P_%d (%f bits)",
					lvl, a, d, maxGroup, a, lp)
			}
			if err != nil && minSlack > 0.5 {
				t.Fatalf("plan (%d,%d,%d) rejected (%v) with %f bits of slack everywhere",
					lvl, a, d, err, minSlack)
			}
			// Monotonicity: P_{a+1} is a superset of P_a.
			if err == nil && a < p.Alpha() {
				if err2 := p.ValidateGadgetPlan(lvl, a+1, d); err2 != nil {
					t.Fatalf("plan (%d,%d,%d) valid but (alpha+1) rejected: %v", lvl, a, d, err2)
				}
			}
		}
	})
}
