package fusion

import (
	"github.com/anaheim-sim/anaheim/internal/sched"
	"github.com/anaheim-sim/anaheim/internal/trace"
)

// Stage is one row of a fusion report: the trace state after the named
// rewrite stage, with its simulated execution time under the report's
// scheduler configuration.
type Stage struct {
	Name      string
	Kernels   int
	Bytes     float64 // total DRAM traffic of the trace at this stage
	SimTimeNs float64
	Stats     Stats // zero-valued for the baseline row
}

// SpeedupVsBase returns this stage's simulated speedup over a baseline row.
func (s Stage) SpeedupVsBase(base Stage) float64 {
	if s.SimTimeNs == 0 {
		return 0
	}
	return base.SimTimeNs / s.SimTimeNs
}

// Report applies the passes cumulatively to t (mutating it), running the
// scheduler after each pass. Row 0 is the un-rewritten baseline; row i+1 is
// the state after passes[i]. This is the before/after-per-pass view the
// ext-fusion experiment and the CI bench summary print.
func Report(t *trace.Trace, cfg sched.Config, passes ...TracePass) []Stage {
	stages := make([]Stage, 0, len(passes)+1)
	base := sched.Run(t, cfg)
	stages = append(stages, Stage{
		Name: "naive", Kernels: len(t.Kernels), Bytes: t.TotalBytes(), SimTimeNs: base.TimeNs,
	})
	for _, p := range passes {
		s := p.Apply(t)
		record(s)
		r := sched.Run(t, cfg)
		stages = append(stages, Stage{
			Name: p.Name(), Kernels: len(t.Kernels), Bytes: t.TotalBytes(), SimTimeNs: r.TimeNs, Stats: s,
		})
	}
	return stages
}
