package experiments

import (
	"github.com/anaheim-sim/anaheim/internal/dram"
	"github.com/anaheim-sim/anaheim/internal/gpu"
	"github.com/anaheim-sim/anaheim/internal/pim"
	"github.com/anaheim-sim/anaheim/internal/report"
	"github.com/anaheim-sim/anaheim/internal/sched"
	"github.com/anaheim-sim/anaheim/internal/trace"
	"github.com/anaheim-sim/anaheim/internal/workloads"
)

// Extension experiments backing two claims the paper argues but does not
// plot: that Anaheim's software contributions also apply to general-purpose
// PIM devices while the custom MMAC unit remains decisive (§VI-D, §IX), and
// that pipelining GPU and PIM kernels would add little once Anaheim has
// shrunk the element-wise share (§V-C).

// ExtGeneralPurposeMetrics compares PIM unit microarchitectures on Boot.
type ExtGeneralPurposeMetrics struct {
	Unit    string
	BootMs  float64
	Speedup float64 // vs GPU-only
}

// ExtGeneralPurposePIM runs bootstrapping on the Anaheim near-bank unit and
// on a UPMEM-style general-purpose unit with identical DRAM geometry.
func ExtGeneralPurposePIM() ([]ExtGeneralPurposeMetrics, *report.Table) {
	p := trace.PaperParams()
	g := gpu.A100()
	base, _ := runBoot(p, trace.GPUBaseline(), sched.Config{GPU: g, Lib: gpu.Cheddar()}, workloads.DefaultBoot())

	var out []ExtGeneralPurposeMetrics
	out = append(out, ExtGeneralPurposeMetrics{"GPU only", base.TimeMs(), 1.0})
	for _, u := range []pim.UnitConfig{pim.A100NearBank(), pim.UPMEMStyle()} {
		uc := u
		r, _ := runBoot(p, trace.AnaheimDefault(), sched.Config{GPU: g, Lib: gpu.Cheddar(), PIM: &uc}, workloads.DefaultBoot())
		out = append(out, ExtGeneralPurposeMetrics{u.Name, r.TimeMs(), base.TimeNs / r.TimeNs})
	}
	tbl := &report.Table{
		Title:   "Extension: Anaheim MMAC unit vs general-purpose PIM (Boot, A100 DRAM geometry)",
		Headers: []string{"Unit", "Boot time", "speedup vs GPU"},
	}
	for _, m := range out {
		tbl.AddRow(m.Unit, report.F(m.BootMs, 2)+"ms", report.X(m.Speedup))
	}
	tbl.AddNote("§IX: UPMEM-based FHE attempts 'stay at modest levels'; the custom modular datapath is what makes PIM pay off")
	return out, tbl
}

// ExtMemoryTechMetrics is one memory technology's Boot result.
type ExtMemoryTechMetrics struct {
	Memory     string
	BWGBs      float64
	GPUOnlyMs  float64
	AnaheimMs  float64
	Speedup    float64
	EWShareGPU float64
}

// ExtMemoryTechnologies applies Anaheim near-bank PIM across DRAM
// technologies (§VI-D: "Anaheim can be applied to DDR, GDDR, and LPDDR
// memories"), holding the compute die constant: the scarcer the external
// bandwidth, the larger the element-wise share and the bigger PIM's win.
func ExtMemoryTechnologies() ([]ExtMemoryTechMetrics, *report.Table) {
	p := trace.PaperParams()
	var out []ExtMemoryTechMetrics
	tbl := &report.Table{
		Title:   "Extension: Anaheim across DRAM technologies (Boot, A100-class compute)",
		Headers: []string{"Memory", "ext BW", "GPU-only", "Anaheim", "speedup", "EW share (GPU)"},
	}
	for _, mem := range []dram.Config{dram.A100HBM2(), dram.RTX4090GDDR6X(), dram.DDR5(), dram.LPDDR5X()} {
		g := gpu.A100()
		g.DRAM = mem
		// The PIM unit is re-tuned per technology (clock and buffer as in
		// Table III for the two GPU memories; near-bank defaults elsewhere).
		var u pim.UnitConfig
		if mem.Name == dram.RTX4090GDDR6X().Name {
			u = pim.RTX4090NearBank()
		} else {
			u = pim.A100NearBank()
			u.DRAM = mem
			u.DieGroups = 4
			if mem.Dies%5 == 0 {
				u.DieGroups = 5
			}
		}
		base, _ := runBoot(p, trace.GPUBaseline(), sched.Config{GPU: g, Lib: gpu.Cheddar()}, workloads.DefaultBoot())
		r, _ := runBoot(p, trace.AnaheimDefault(), sched.Config{GPU: g, Lib: gpu.Cheddar(), PIM: &u}, workloads.DefaultBoot())
		m := ExtMemoryTechMetrics{
			Memory: mem.Name, BWGBs: mem.ExternalBWGBs,
			GPUOnlyMs: base.TimeMs(), AnaheimMs: r.TimeMs(),
			Speedup: base.TimeNs / r.TimeNs, EWShareGPU: base.EWShare(),
		}
		out = append(out, m)
		tbl.AddRow(mem.Name, report.F(mem.ExternalBWGBs, 0)+"GB/s", report.Ms(base.TimeNs),
			report.Ms(r.TimeNs), report.X(m.Speedup), report.F(100*m.EWShareGPU, 1)+"%")
	}
	tbl.AddNote("the element-wise share — and therefore PIM's leverage — grows as external bandwidth shrinks (§IV-D)")
	return out, tbl
}

// ExtPipeliningMetrics bounds the benefit of GPU/PIM pipelining.
type ExtPipeliningMetrics struct {
	Workload    string
	SerialMs    float64
	OverlapMs   float64 // lower bound with perfect pipelining
	MaxGainPct  float64
	PIMSharePct float64
}

// ExtPipelining computes, per workload, the upper bound on pipelining gains:
// perfect overlap can at best hide min(GPU time, PIM time), so the floor is
// max(GPU, PIM) plus transitions. §V-C argues this residual gain does not
// justify the cache-coherence hardware it would cost.
func ExtPipelining() ([]ExtPipeliningMetrics, *report.Table) {
	p := trace.PaperParams()
	g := gpu.A100()
	u := pim.A100NearBank()
	var out []ExtPipeliningMetrics
	tbl := &report.Table{
		Title:   "Extension: upper bound on GPU/PIM pipelining gains (A100 near-bank)",
		Headers: []string{"Workload", "serial", "perfect overlap", "max gain", "PIM share"},
	}
	for _, w := range workloads.All() {
		uc := u
		r := sched.Run(w.Gen(p, trace.AnaheimDefault()), sched.Config{GPU: g, Lib: gpu.Cheddar(), PIM: &uc})
		overlap := r.GPUTimeNs
		if r.PIMTimeNs > overlap {
			overlap = r.PIMTimeNs
		}
		overlap += r.TimeNs - r.GPUTimeNs - r.PIMTimeNs // transitions stay
		m := ExtPipeliningMetrics{
			Workload:    w.Name,
			SerialMs:    r.TimeMs(),
			OverlapMs:   overlap / 1e6,
			MaxGainPct:  100 * (r.TimeNs - overlap) / r.TimeNs,
			PIMSharePct: 100 * r.PIMTimeNs / r.TimeNs,
		}
		out = append(out, m)
		tbl.AddRow(w.Name, report.Ms(r.TimeNs), report.F(m.OverlapMs, 2)+"ms",
			report.F(m.MaxGainPct, 1)+"%", report.F(m.PIMSharePct, 1)+"%")
	}
	tbl.AddNote("§V-C: after offloading, PIM occupies a minority of the timeline, so perfect pipelining buys at most this bound")
	return out, tbl
}
