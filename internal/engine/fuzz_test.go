package engine

import (
	"encoding/json"
	"testing"
)

// FuzzJobSpecDecode feeds arbitrary bytes to the HTTP job-spec decoder —
// the exact function the POST /v1/sessions/{sid}/jobs handler calls on the
// request body after the size cap. The contract: malformed bodies error
// out, they never panic, and whatever decodes cleanly must also survive
// the admission-time DAG validation without panicking.
func FuzzJobSpecDecode(f *testing.F) {
	seed := func(v any) {
		raw, err := json.Marshal(v)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
	}
	seed(map[string]any{
		"inputs": map[string]string{"x": "AAAA"},
		"ops": []map[string]any{
			{"id": "sq", "op": "square", "args": []string{"x"}},
			{"id": "r", "op": "rotate", "args": []string{"sq"}, "k": 1},
		},
		"outputs":    []string{"r"},
		"deadlineMs": 250,
	})
	seed(map[string]any{
		"inputs":  map[string]string{"x": "!!!not-base64!!!"},
		"ops":     []map[string]any{{"id": "a", "op": "add", "args": []string{"x", "x"}}},
		"outputs": []string{"a"},
	})
	seed(map[string]any{ // self-cycle: decode fine, validate must reject
		"ops":     []map[string]any{{"id": "a", "op": "add", "args": []string{"a", "a"}}},
		"outputs": []string{"a"},
	})
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`{"inputs":{"":""}}`))
	f.Add([]byte(`{"ops":[{"id":"x","op":"nope"}],"outputs":["x"]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := decodeSubmitJob("sess-fuzz", data)
		if err != nil {
			return // malformed body rejected: expected
		}
		if spec.SessionID != "sess-fuzz" {
			t.Fatalf("session id not threaded through: %q", spec.SessionID)
		}
		// Decoded specs flow into validate() at Submit; it must classify,
		// not crash, whatever shape survived JSON decoding.
		_ = validate(&spec)
	})
}
