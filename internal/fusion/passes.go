package fusion

import (
	"strings"

	"github.com/anaheim-sim/anaheim/internal/pim"
	"github.com/anaheim-sim/anaheim/internal/trace"
)

// displayName strips the "#seq" uniquifier off a fuse-group identity,
// recovering the compound's display name.
func displayName(gid string) string {
	if i := strings.IndexByte(gid, '#'); i >= 0 {
		return gid[:i]
	}
	return gid
}

// --- SwapAutPMult (§V-B) ----------------------------------------------------

type swapAutPMult struct{}

// SwapAutPMult returns the automorphism↔PMULT reorder pass: a diagonal
// plaintext multiply that consumes an automorphism's output commutes with it
// once the plaintext is pre-rotated offline (σ(a)·p = σ(a·σ⁻¹(p))), so the
// pass moves tagged diagonal multiplies in front of the automorphism. The
// trace's cost is unchanged — the payoff is that the automorphism lands
// adjacent to its accumulation, where AutAccum can fuse them (Fig 6).
func SwapAutPMult() TracePass { return swapAutPMult{} }

func (swapAutPMult) Name() string { return "swap-aut-pmult" }

func (swapAutPMult) Apply(t *trace.Trace) Stats {
	ks := t.Kernels
	st := Stats{Pass: "swap-aut-pmult", KernelsBefore: len(ks), KernelsAfter: len(ks)}
	for i := 0; i < len(ks); i++ {
		if ks[i].Class != trace.ClassAut || ks[i].FuseRole != trace.RoleAut {
			continue
		}
		// Bubble the automorphism past every immediately-following
		// swappable multiply (equivalently: move those multiplies before
		// the automorphism, preserving their relative order).
		j := i
		for j+1 < len(ks) && ks[j+1].Class == trace.ClassEW && ks[j+1].FuseRole == trace.RoleSwapPMult {
			ks[j], ks[j+1] = ks[j+1], ks[j]
			j++
			st.Swaps++
		}
		i = j
	}
	return st
}

// --- AutAccum (Fig 6) -------------------------------------------------------

type autAccum struct{}

// AutAccum returns the automorphism-accumulation fusion pass: an adjacent
// [bare automorphism (2 accesses), separate accumulation (3 accesses)] pair
// of one fuse group merges into a single fused automorphism kernel at 3
// accesses — the permutation is applied on the fly while accumulating,
// eliminating the rotated temporary's DRAM round trip (5 → 3 accesses).
func AutAccum() TracePass { return autAccum{} }

func (autAccum) Name() string { return "autaccum" }

func (autAccum) Apply(t *trace.Trace) Stats {
	in := t.Kernels
	st := Stats{Pass: "autaccum", KernelsBefore: len(in)}
	out := make([]trace.Kernel, 0, len(in))
	for i := 0; i < len(in); i++ {
		k := in[i]
		if k.Class == trace.ClassAut && k.FuseRole == trace.RoleAut &&
			i+1 < len(in) && in[i+1].FuseRole == trace.RoleAccum && in[i+1].FuseGroup == k.FuseGroup {
			acc := in[i+1]
			merged := k
			merged.Bytes = acc.Bytes // fused: read src + read acc + write acc
			merged.WeightedOps += acc.WeightedOps
			merged.WriteBack += acc.WriteBack
			merged.FuseGroup, merged.FuseRole = "", ""
			out = append(out, merged)
			st.Fused++
			st.BytesSaved += k.Bytes + acc.Bytes - merged.Bytes
			i++
			continue
		}
		out = append(out, k)
	}
	t.Kernels = out
	st.KernelsAfter = len(out)
	return st
}

// --- PAccum / CAccum (Table II) --------------------------------------------

type accumMerge struct {
	pass    string
	member  pim.Opcode // the naive per-term instruction
	fused   pim.Opcode // the compound instruction
	perTerm int        // members per compound fan-in unit (1 for PAccum, 2 for CAccum)
}

// PAccum returns the plaintext-accumulation merge pass: K tagged PMAC
// kernels of one fuse group (7 accesses each, re-touching their
// accumulators) merge into a single PAccum⟨K⟩ compound at 3K+2 accesses.
func PAccum() TracePass {
	return accumMerge{pass: "paccum", member: pim.PMAC, fused: pim.PAccum, perTerm: 1}
}

// CAccum returns the constant-accumulation merge pass: 2K tagged CMAC
// kernels of one fuse group (3 accesses each) merge into a single CAccum⟨K⟩
// compound at 2K+2 accesses.
func CAccum() TracePass {
	return accumMerge{pass: "caccum", member: pim.CMAC, fused: pim.CAccum, perTerm: 2}
}

func (m accumMerge) Name() string { return m.pass }

func (m accumMerge) Apply(t *trace.Trace) Stats {
	in := t.Kernels
	st := Stats{Pass: m.pass, KernelsBefore: len(in)}

	// Gather group members. Members need not be adjacent: all of a group's
	// kernels feed the same pair of accumulators, so the merged compound is
	// placed at the last member's position, where every contribution is
	// available.
	members := map[string][]int{}
	for i, k := range in {
		if k.Class == trace.ClassEW && k.Op == m.member && k.FuseGroup != "" && k.FuseRole != trace.RoleAccum {
			members[k.FuseGroup] = append(members[k.FuseGroup], i)
		}
	}

	drop := make(map[int]bool)
	replace := make(map[int]trace.Kernel)
	for gid, idxs := range members {
		n := len(idxs)
		// Singleton groups still convert: PAccum⟨1⟩ touches its accumulator
		// pair once (5 accesses) where a bare PMAC re-reads it (7).
		if n < m.perTerm || n%m.perTerm != 0 {
			continue
		}
		first := in[idxs[0]]
		ok := true
		var ops, bytes, oneTime, writeBack float64
		for _, i := range idxs {
			k := in[i]
			if k.Limbs != first.Limbs || k.Instances != first.Instances || k.Offload != first.Offload {
				ok = false
				break
			}
			ops += k.WeightedOps
			bytes += k.Bytes
			oneTime += k.OneTime
			writeBack += k.WriteBack
		}
		if !ok {
			continue
		}
		fanIn := n / m.perTerm
		spec := pim.Spec(m.fused, fanIn)
		merged := trace.Kernel{
			Name: displayName(gid), Class: trace.ClassEW,
			WeightedOps: ops,
			Bytes:       float64(spec.PIMAccesses()) * t.P.PolyBytes(first.Limbs) * float64(first.Instances),
			OneTime:     oneTime,
			Op:          m.fused, OpK: fanIn, Limbs: first.Limbs, Instances: first.Instances,
			Offload: first.Offload, WriteBack: writeBack,
		}
		last := idxs[n-1]
		replace[last] = merged
		for _, i := range idxs[:n-1] {
			drop[i] = true
		}
		st.Fused += n - 1
		st.BytesSaved += bytes - merged.Bytes
	}

	out := make([]trace.Kernel, 0, len(in)-len(drop))
	for i, k := range in {
		if drop[i] {
			continue
		}
		if r, ok := replace[i]; ok {
			k = r
		}
		out = append(out, k)
	}
	t.Kernels = out
	st.KernelsAfter = len(out)
	return st
}
