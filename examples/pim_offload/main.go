// PIM offloading demo: the paper's running example (a hoisted linear
// transform with K=8 diagonals, Fig 4a/Fig 5) simulated on the A100 under
// three modes — GPU-only, a hypothetical 4x-bandwidth DRAM, and Anaheim's
// PIM offloading — with Gantt charts of the resulting schedules.
package main

import (
	"fmt"

	"github.com/anaheim-sim/anaheim/internal/gpu"
	"github.com/anaheim-sim/anaheim/internal/pim"
	"github.com/anaheim-sim/anaheim/internal/sched"
	"github.com/anaheim-sim/anaheim/internal/trace"
)

func main() {
	p := trace.PaperParams()
	fmt.Printf("running example: hoisted linear transform, K=8, D=%d, N=2^%d, L=%d\n\n",
		p.D, p.LogN, p.L)

	build := func(opt trace.Options) *trace.Trace {
		b := trace.NewBuilder(p, opt, "LT-K8")
		b.LinearTransform(p.L-1, 8)
		return b.T
	}

	g := gpu.A100()
	g4 := g
	g4.DRAM.ExternalBWGBs *= 4
	nb := pim.A100NearBank()

	modes := []struct {
		name string
		t    *trace.Trace
		cfg  sched.Config
	}{
		{"GPU only (w/o PIM)", build(trace.GPUBaseline()), sched.Config{GPU: g, Lib: gpu.Cheddar()}},
		{"4x BW DRAM (hypothetical)", build(trace.GPUBaseline()), sched.Config{GPU: g4, Lib: gpu.Cheddar()}},
		{"Anaheim PIM (near-bank)", build(trace.AnaheimDefault()), sched.Config{GPU: g, Lib: gpu.Cheddar(), PIM: &nb}},
	}

	var baseline float64
	for i, m := range modes {
		r := sched.Run(m.t, m.cfg)
		if i == 0 {
			baseline = r.TimeNs
		}
		fmt.Printf("--- %s: %.0fus (%.2fx), EW %.0fus, GPU DRAM %.2fGB, PIM DRAM %.2fGB\n",
			m.name, r.TimeNs/1e3, baseline/r.TimeNs,
			r.ClassTimeNs[trace.ClassEW]/1e3, r.GPUBytes/1e9, r.PIMBytes/1e9)
		fmt.Print(sched.RenderGantt(r.Timeline, r.TimeNs, 96))
		fmt.Println()
	}
	fmt.Println("legend: M = ModSwitch ((I)NTT+BConv), E = GPU element-wise, A = automorphism, P = PIM kernel")
	fmt.Println("note how PIM replaces the E lane entirely while M and A stay on the GPU (Fig 5).")
}
