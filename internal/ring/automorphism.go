package ring

import (
	"math/bits"
)

// Galois automorphisms σ_g: X -> X^g for odd g mod 2N. In CKKS, the rotation
// of the slot vector by r positions corresponds to g = 5^r mod 2N, and
// complex conjugation to g = 2N-1 (§II-B "automorphism").

// GaloisElement returns the Galois element 5^r mod 2N realizing a cyclic
// slot rotation by r (r may be negative).
func (r *Ring) GaloisElement(rot int) uint64 {
	twoN := uint64(2 * r.N)
	n2 := r.N >> 1 // slot count; rotations are cyclic mod N/2
	rot = ((rot % n2) + n2) % n2
	g := uint64(1)
	base := uint64(5)
	for k := 0; k < rot; k++ {
		g = g * base % twoN
	}
	return g
}

// GaloisElementConjugate returns the Galois element for complex conjugation.
func (r *Ring) GaloisElementConjugate() uint64 { return uint64(2*r.N) - 1 }

// AutomorphismCoeff applies σ_g to a coefficient-domain polynomial:
// coefficient j of the input lands at position g*j mod 2N, negated when the
// exponent wraps past N.
func (r *Ring) AutomorphismCoeff(out, in *Poly, g uint64, level int) {
	if in.IsNTT {
		panic("ring: AutomorphismCoeff requires coefficient domain")
	}
	if out == in {
		panic("ring: AutomorphismCoeff cannot operate in place")
	}
	n := uint64(r.N)
	mask := 2*n - 1
	for i := 0; i <= level; i++ {
		mod := r.Moduli[i]
		src, dst := in.Coeffs[i], out.Coeffs[i]
		for j := uint64(0); j < n; j++ {
			k := (j * g) & mask
			if k < n {
				dst[k] = src[j]
			} else {
				dst[k-n] = mod.Neg(src[j])
			}
		}
	}
	out.IsNTT = false
}

// nttAutoIndex builds (and caches) the NTT-domain permutation for σ_g: with
// the bit-reversed evaluation order, output slot i holds the value at root
// exponent e_i = 2·brv(i)+1, and σ_g moves the value from exponent g·e_i.
func (r *Ring) nttAutoIndex(g uint64) []int {
	r.autoMu.Lock()
	defer r.autoMu.Unlock()
	if idx, ok := r.autoCache[g]; ok {
		return idx
	}
	n := uint64(r.N)
	logN := r.LogN
	mask := 2*n - 1
	idx := make([]int, n)
	for i := uint64(0); i < n; i++ {
		e := 2*brv(i, logN) + 1
		src := (g * e) & mask
		idx[i] = int(brv((src-1)>>1, logN))
	}
	r.autoCache[g] = idx
	return idx
}

func brv(x uint64, n int) uint64 { return bits.Reverse64(x) >> uint(64-n) }

// AutomorphismNTT applies σ_g to an NTT-domain polynomial via slot
// permutation (no arithmetic).
func (r *Ring) AutomorphismNTT(out, in *Poly, g uint64, level int) {
	if !in.IsNTT {
		panic("ring: AutomorphismNTT requires NTT domain")
	}
	if out == in {
		panic("ring: AutomorphismNTT cannot operate in place")
	}
	idx := r.nttAutoIndex(g)
	for i := 0; i <= level; i++ {
		src, dst := in.Coeffs[i], out.Coeffs[i]
		for j, k := range idx {
			dst[j] = src[k]
		}
	}
	out.IsNTT = true
}

// Automorphism dispatches on the polynomial's current domain.
func (r *Ring) Automorphism(out, in *Poly, g uint64, level int) {
	if in.IsNTT {
		r.AutomorphismNTT(out, in, g, level)
	} else {
		r.AutomorphismCoeff(out, in, g, level)
	}
}
