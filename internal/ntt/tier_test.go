package ntt

import (
	"testing"

	"github.com/anaheim-sim/anaheim/internal/modarith"
)

// TestTransformAcrossKernelTiers runs full forward/inverse transforms (all
// four laziness variants) on every kernel tier available on the host and
// requires bit-identical outputs: the NTT is the heaviest consumer of the
// dispatched butterfly kernels, so a carry bug that survives the row-level
// sweeps still dies here, where thousands of butterflies compound.
//
// The "modarith kernel tier" log line below is asserted by CI (each matrix
// leg greps the test log for the tier it expects), so a misconfigured leg —
// e.g. the arm64 runner silently falling back to pure Go — fails loudly
// instead of green-washing the matrix.
func TestTransformAcrossKernelTiers(t *testing.T) {
	t.Logf("modarith kernel tier: active=%s available=%v", modarith.ActiveTier(), modarith.AvailableTiers())

	orig := modarith.ActiveTier()
	t.Cleanup(func() {
		if err := modarith.SetKernelTier(orig); err != nil {
			t.Fatalf("restoring tier %v: %v", orig, err)
		}
	})

	for _, logN := range []int{4, 10, 13} {
		primes, err := modarith.GenerateNTTPrimes(55, logN, 1)
		if err != nil {
			t.Fatal(err)
		}
		tbl, err := NewTables(modarith.MustModulus(primes[0]), logN)
		if err != nil {
			t.Fatal(err)
		}
		q := tbl.Mod.Q
		input := make([]uint64, tbl.N)
		for i := range input {
			input[i] = (uint64(i)*0x9e3779b97f4a7c15 + 12345) % (2 * q) // lazy domain
		}

		variants := []struct {
			name string
			run  func(a []uint64)
		}{
			{"fwd", func(a []uint64) { tbl.Forward(a) }},
			{"fwdLazy", func(a []uint64) { tbl.ForwardLazy(a) }},
			{"fwd+inv", func(a []uint64) { tbl.Forward(a); tbl.Inverse(a) }},
			{"fwdLazy+invLazy", func(a []uint64) { tbl.ForwardLazy(a); tbl.InverseLazy(a) }},
		}
		for _, v := range variants {
			// Reference outputs on the pure-Go tier.
			if err := modarith.SetKernelTier(modarith.TierGo); err != nil {
				t.Fatal(err)
			}
			want := append([]uint64(nil), input...)
			v.run(want)

			for _, tier := range modarith.AvailableTiers() {
				if tier == modarith.TierGo {
					continue
				}
				if err := modarith.SetKernelTier(tier); err != nil {
					t.Fatal(err)
				}
				got := append([]uint64(nil), input...)
				v.run(got)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("logN=%d %s tier=%v: output[%d] = %#x, go tier %#x",
							logN, v.name, tier, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestBatchTransformsAcrossKernelTiers covers the split/parallel transform
// paths (forwardSplit/inverseSplit drive the dispatched butterfly kernels
// with chunked sub-spans whose lengths differ from the serial path).
func TestBatchTransformsAcrossKernelTiers(t *testing.T) {
	orig := modarith.ActiveTier()
	t.Cleanup(func() {
		if err := modarith.SetKernelTier(orig); err != nil {
			t.Fatalf("restoring tier %v: %v", orig, err)
		}
	})

	const logN, limbs = 13, 3
	primes, err := modarith.GenerateNTTPrimes(55, logN, limbs)
	if err != nil {
		t.Fatal(err)
	}
	tables := make([]*Tables, limbs)
	mkRows := func() [][]uint64 {
		rows := make([][]uint64, limbs)
		for l := range rows {
			rows[l] = make([]uint64, 1<<logN)
			for i := range rows[l] {
				rows[l][i] = (uint64(i)*0xbf58476d1ce4e5b9 + uint64(l)) % primes[l]
			}
		}
		return rows
	}
	for l := range tables {
		if tables[l], err = NewTables(modarith.MustModulus(primes[l]), logN); err != nil {
			t.Fatal(err)
		}
	}

	if err := modarith.SetKernelTier(modarith.TierGo); err != nil {
		t.Fatal(err)
	}
	want := mkRows()
	ForwardMany(tables, want)
	InverseMany(tables, want)

	for _, tier := range modarith.AvailableTiers() {
		if tier == modarith.TierGo {
			continue
		}
		if err := modarith.SetKernelTier(tier); err != nil {
			t.Fatal(err)
		}
		got := mkRows()
		ForwardMany(tables, got)
		InverseMany(tables, got)
		for l := range want {
			for i := range want[l] {
				if got[l][i] != want[l][i] {
					t.Fatalf("tier=%v limb=%d: output[%d] = %#x, go tier %#x", tier, l, i, got[l][i], want[l][i])
				}
			}
		}
	}
}
