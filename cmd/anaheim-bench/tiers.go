package main

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"testing"

	"github.com/anaheim-sim/anaheim/internal/modarith"
	"github.com/anaheim-sim/anaheim/internal/ntt"
	"github.com/anaheim-sim/anaheim/internal/rns"
)

// tierGrid is the kernel-tier benchmark cell: the n14 configurations the
// SIMD-dispatch acceptance numbers are quoted on (README perf table). One
// cell per op, repeated per host-available tier — the grid is the tier list,
// not the shape. A package variable so the JSON shape test can shrink it.
var tierGrid = struct {
	logN, nttLimbs, bconvLimbs int
}{logN: 14, nttLimbs: 1, bconvLimbs: 16}

// withKernelTier pins the modarith kernel tier around one benchmark body and
// restores the previous tier afterwards, so the per-tier rows cannot leak
// their tier into the rest of the (alphabetically interleaved) suite.
func withKernelTier(tier modarith.KernelTier, body func(b *testing.B)) func(b *testing.B) {
	return func(b *testing.B) {
		prev := modarith.ActiveTier()
		if err := modarith.SetKernelTier(tier); err != nil {
			b.Fatal(err)
		}
		defer modarith.SetKernelTier(prev)
		body(b)
	}
}

// addKernelTierBenches registers the per-tier rows: the same hot ops the
// dispatch rewrite targets (forward/inverse NTT, wide-accumulation BConv,
// vectorized rescale), once per kernel tier available on this host. Row names
// append the tier (ntt_fwd-n14-l1-avx512), so -tiertable can pivot them into
// a go-vs-asm speedup table and -compare treats them as independent ops.
func addKernelTierBenches(benches map[string]func(b *testing.B)) {
	logN, nttLimbs, bconvLimbs := tierGrid.logN, tierGrid.nttLimbs, tierGrid.bconvLimbs
	for _, tier := range modarith.AvailableTiers() {
		tier := tier
		nttCell := fmt.Sprintf("n%d-l%d-%s", logN, nttLimbs, tier)
		benches["ntt_fwd-"+nttCell] = withKernelTier(tier, func(b *testing.B) {
			tables, rows, _, err := nttBenchSetup(logN, nttLimbs)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ntt.ForwardMany(tables, rows)
			}
		})
		benches["ntt_inv-"+nttCell] = withKernelTier(tier, func(b *testing.B) {
			tables, rows, _, err := nttBenchSetup(logN, nttLimbs)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ntt.InverseMany(tables, rows)
			}
		})
		bconvCell := fmt.Sprintf("n%d-l%d-%s", logN, bconvLimbs, tier)
		benches["bconv-"+bconvCell] = withKernelTier(tier, func(b *testing.B) {
			bc, in, out, err := bconvBenchSetup(logN, bconvLimbs)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bc.Convert(out, in)
			}
		})
		benches["rescale-"+bconvCell] = withKernelTier(tier, func(b *testing.B) {
			ms, rows, err := rescaleBenchSetup(logN, bconvLimbs)
			if err != nil {
				b.Fatal(err)
			}
			rs := rns.NewRescaler(ms)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rs.DivRoundByLastModulus(rows)
			}
		})
	}
}

// tierSuffixes are the recognized per-tier row suffixes, in display order.
var tierSuffixes = []string{"go", "neon", "avx2", "avx512"}

// runTierTable pivots the per-tier rows of a -micro JSON report into a
// GitHub-flavored markdown table (one row per op, one ns/op column per tier,
// plus the best-tier speedup over pure Go). CI appends it to the job step
// summary so the per-leg kernel numbers are readable without downloading the
// artifact.
func runTierTable(out io.Writer, path string) error {
	rep, err := readReport(path)
	if err != nil {
		return err
	}

	// op base -> tier -> ns/op
	byBase := map[string]map[string]float64{}
	present := map[string]bool{}
	for _, r := range rep.Results {
		for _, tier := range tierSuffixes {
			suffix := "-" + tier
			if strings.HasSuffix(r.Op, suffix) {
				base := strings.TrimSuffix(r.Op, suffix)
				if byBase[base] == nil {
					byBase[base] = map[string]float64{}
				}
				byBase[base][tier] = r.NsPerOp
				present[tier] = true
				break
			}
		}
	}
	if len(byBase) == 0 {
		return fmt.Errorf("anaheim-bench: %s has no per-tier benchmark rows (op names ending in -go/-neon/-avx2/-avx512)", path)
	}

	var tiers []string
	for _, tier := range tierSuffixes {
		if present[tier] {
			tiers = append(tiers, tier)
		}
	}
	bases := make([]string, 0, len(byBase))
	for base := range byBase {
		bases = append(bases, base)
	}
	sort.Strings(bases)

	fmt.Fprintf(out, "### Kernel-tier microbenchmarks (%s/%s, %d CPUs)\n\n", rep.GOOS, rep.GOARCH, rep.NumCPU)
	fmt.Fprint(out, "| op |")
	for _, tier := range tiers {
		fmt.Fprintf(out, " %s ns/op |", tier)
	}
	fmt.Fprint(out, " best vs go |\n|---|")
	for range tiers {
		fmt.Fprint(out, "---:|")
	}
	fmt.Fprint(out, "---:|\n")
	for _, base := range bases {
		cells := byBase[base]
		fmt.Fprintf(out, "| %s |", base)
		best := 0.0
		for _, tier := range tiers {
			ns, ok := cells[tier]
			if !ok {
				fmt.Fprint(out, " - |")
				continue
			}
			fmt.Fprintf(out, " %.0f |", ns)
			if tier != "go" && (best == 0 || ns < best) {
				best = ns
			}
		}
		goNs, hasGo := cells["go"]
		if hasGo && best > 0 {
			fmt.Fprintf(out, " %.2fx |\n", goNs/best)
		} else {
			fmt.Fprint(out, " - |\n")
		}
	}
	return nil
}
